// Package procmem simulates per-process memory spaces. It is the substrate
// that makes the paper's key finding expressible in code: the L3 CDM keeps
// its keybox and derived keys in ordinary process memory (CWE-922, insecure
// storage of sensitive information), where a Frida-style monitor attached to
// the hosting process can scan for them. The L1 CDM keeps the same material
// inside the TEE (internal/tee), which owns a space that refuses attachment.
//
// A Space is a set of named regions at stable virtual base addresses. The
// monitor reads a space only through Snapshot/ReadAt/Scan — the same
// primitives Frida's Memory.scan offers — so the keybox-recovery attack in
// internal/attack works exactly as described in §IV-D of the paper.
package procmem

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// pageSize is the allocation granularity; region bases are page aligned so
// scans see realistic gaps between regions.
const pageSize = 4096

// ErrUnmapped is returned when reading an address range no region covers.
var ErrUnmapped = errors.New("procmem: address not mapped")

// Space is one process's simulated memory space.
type Space struct {
	name string

	mu        sync.RWMutex
	regions   map[uint64]*Region // keyed by base address
	nextBase  uint64
	protected bool
}

// SetProtected marks the process as refusing debugger/monitor attachment
// (the anti-debugging techniques OTT apps deploy in their own processes).
// It does not restrict this package's accessors — enforcement is the
// monitor's job at attach time via Protected.
func (s *Space) SetProtected(p bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.protected = p
}

// Protected reports whether the process resists attachment.
func (s *Space) Protected() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.protected
}

// NewSpace creates an empty memory space for the named process.
func NewSpace(processName string) *Space {
	return &Space{
		name:     processName,
		regions:  make(map[uint64]*Region),
		nextBase: 0x7000_0000_0000, // arbitrary high base, like a mmap arena
	}
}

// ProcessName returns the owning process name (e.g. "mediadrmserver").
func (s *Space) ProcessName() string { return s.name }

// Region is a contiguous allocation within a Space.
type Region struct {
	space *Space
	base  uint64
	tag   string

	mu   sync.RWMutex
	data []byte
	free bool
}

// Alloc reserves size bytes tagged with a purpose label (visible to
// snapshots, like /proc/<pid>/maps region names).
func (s *Space) Alloc(tag string, size int) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("procmem: invalid allocation size %d", size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	r := &Region{
		space: s,
		base:  s.nextBase,
		tag:   tag,
		data:  make([]byte, size),
	}
	pages := (size + pageSize - 1) / pageSize
	s.nextBase += uint64((pages + 1) * pageSize) // one guard page between regions
	s.regions[r.base] = r
	return r, nil
}

// Free unmaps the region. Its contents become unreadable but are NOT
// scrubbed first — freeing without zeroing is part of the insecure-storage
// behaviour the attack exploits; call Region.Zero explicitly to scrub.
func (s *Space) Free(r *Region) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.mu.Lock()
	r.free = true
	r.mu.Unlock()
	delete(s.regions, r.base)
}

// RegionInfo describes one mapped region, as a monitor sees it.
type RegionInfo struct {
	Base uint64
	Size int
	Tag  string
}

// Snapshot lists mapped regions sorted by base address.
func (s *Space) Snapshot() []RegionInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RegionInfo, 0, len(s.regions))
	for _, r := range s.regions {
		r.mu.RLock()
		out = append(out, RegionInfo{Base: r.base, Size: len(r.data), Tag: r.tag})
		r.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// ReadAt copies memory starting at addr into buf, stopping at the end of
// the containing region. It returns ErrUnmapped if addr is not inside any
// mapped region.
func (s *Space) ReadAt(addr uint64, buf []byte) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for base, r := range s.regions {
		r.mu.RLock()
		size := uint64(len(r.data))
		if addr >= base && addr < base+size {
			n := copy(buf, r.data[addr-base:])
			r.mu.RUnlock()
			return n, nil
		}
		r.mu.RUnlock()
	}
	return 0, fmt.Errorf("%w: 0x%x", ErrUnmapped, addr)
}

// Match is one hit from Scan.
type Match struct {
	Addr uint64
	Tag  string
}

// Scan searches every mapped region for the byte pattern and returns all
// match addresses. This is the Frida Memory.scan equivalent the keybox
// recovery uses.
func (s *Space) Scan(pattern []byte) []Match {
	if len(pattern) == 0 {
		return nil
	}
	var out []Match
	for _, info := range s.Snapshot() {
		s.mu.RLock()
		r, ok := s.regions[info.Base]
		s.mu.RUnlock()
		if !ok {
			continue
		}
		r.mu.RLock()
		for off := 0; ; {
			i := bytes.Index(r.data[off:], pattern)
			if i < 0 {
				break
			}
			out = append(out, Match{Addr: r.base + uint64(off+i), Tag: r.tag})
			off += i + 1
		}
		r.mu.RUnlock()
	}
	return out
}

// Base returns the region's virtual base address.
func (r *Region) Base() uint64 { return r.base }

// Size returns the region's length in bytes.
func (r *Region) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.data)
}

// Tag returns the region's purpose label.
func (r *Region) Tag() string { return r.tag }

// Write copies b into the region at off.
func (r *Region) Write(off int, b []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.free {
		return fmt.Errorf("procmem: write to freed region %q", r.tag)
	}
	if off < 0 || off+len(b) > len(r.data) {
		return fmt.Errorf("procmem: write [%d,%d) out of region %q size %d", off, off+len(b), r.tag, len(r.data))
	}
	copy(r.data[off:], b)
	return nil
}

// Read copies the region's bytes at [off, off+len(buf)) into buf.
func (r *Region) Read(off int, buf []byte) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.free {
		return fmt.Errorf("procmem: read from freed region %q", r.tag)
	}
	if off < 0 || off+len(buf) > len(r.data) {
		return fmt.Errorf("procmem: read [%d,%d) out of region %q size %d", off, off+len(buf), r.tag, len(r.data))
	}
	copy(buf, r.data[off:])
	return nil
}

// Zero scrubs the region's contents. A hardened CDM would call this on all
// key material; the simulated L3 CDM deliberately does not.
func (r *Region) Zero() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.data {
		r.data[i] = 0
	}
}
