package procmem

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocAndReadWrite(t *testing.T) {
	s := NewSpace("mediadrmserver")
	r, err := s.Alloc("heap", 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 100 || r.Tag() != "heap" {
		t.Errorf("region size/tag = %d/%q", r.Size(), r.Tag())
	}
	if err := r.Write(10, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if err := r.Read(10, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "secret" {
		t.Errorf("read back %q", buf)
	}
}

func TestAllocInvalidSize(t *testing.T) {
	s := NewSpace("p")
	for _, n := range []int{0, -1} {
		if _, err := s.Alloc("x", n); err == nil {
			t.Errorf("Alloc(%d): want error", n)
		}
	}
}

func TestWriteOutOfBounds(t *testing.T) {
	s := NewSpace("p")
	r, err := s.Alloc("x", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(10, make([]byte, 7)); err == nil {
		t.Error("overlapping write: want error")
	}
	if err := r.Write(-1, []byte{1}); err == nil {
		t.Error("negative offset: want error")
	}
	if err := r.Read(16, make([]byte, 1)); err == nil {
		t.Error("read past end: want error")
	}
}

func TestSpaceReadAt(t *testing.T) {
	s := NewSpace("p")
	r, err := s.Alloc("keys", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(0, bytes.Repeat([]byte{0xAA}, 64)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := s.ReadAt(r.Base()+4, buf)
	if err != nil || n != 8 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte{0xAA}, 8)) {
		t.Errorf("ReadAt content %x", buf)
	}

	// Read near the region end truncates.
	n, err = s.ReadAt(r.Base()+60, buf)
	if err != nil || n != 4 {
		t.Errorf("truncated ReadAt = %d, %v; want 4, nil", n, err)
	}

	// Unmapped address errors.
	if _, err := s.ReadAt(0xdead, buf); !errors.Is(err, ErrUnmapped) {
		t.Errorf("unmapped ReadAt error = %v, want ErrUnmapped", err)
	}
}

func TestScanFindsPatternAcrossRegions(t *testing.T) {
	s := NewSpace("mediadrmserver")
	pattern := []byte("kbox")

	r1, err := s.Alloc("libwvdrmengine-bss", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Write(100, pattern); err != nil {
		t.Fatal(err)
	}
	r2, err := s.Alloc("heap", 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Write(5000, pattern); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc("stack", 1024); err != nil {
		t.Fatal(err)
	}

	matches := s.Scan(pattern)
	if len(matches) != 2 {
		t.Fatalf("Scan found %d matches, want 2: %+v", len(matches), matches)
	}
	if matches[0].Addr != r1.Base()+100 || matches[0].Tag != "libwvdrmengine-bss" {
		t.Errorf("first match = %+v", matches[0])
	}
	if matches[1].Addr != r2.Base()+5000 {
		t.Errorf("second match = %+v", matches[1])
	}
}

func TestScanOverlappingMatches(t *testing.T) {
	s := NewSpace("p")
	r, err := s.Alloc("x", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(0, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Scan([]byte("aa"))); got != 3 {
		t.Errorf("overlapping scan found %d, want 3", got)
	}
	if got := s.Scan(nil); got != nil {
		t.Errorf("empty pattern scan = %v, want nil", got)
	}
}

func TestFreeUnmapsRegion(t *testing.T) {
	s := NewSpace("p")
	r, err := s.Alloc("x", 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(0, []byte("kbox")); err != nil {
		t.Fatal(err)
	}
	s.Free(r)

	if len(s.Scan([]byte("kbox"))) != 0 {
		t.Error("scan sees freed region")
	}
	if _, err := s.ReadAt(r.Base(), make([]byte, 4)); !errors.Is(err, ErrUnmapped) {
		t.Errorf("ReadAt freed region error = %v, want ErrUnmapped", err)
	}
	if err := r.Write(0, []byte{1}); err == nil {
		t.Error("write to freed region: want error")
	}
	if err := r.Read(0, make([]byte, 1)); err == nil {
		t.Error("read from freed region: want error")
	}
}

func TestZeroScrubs(t *testing.T) {
	s := NewSpace("p")
	r, err := s.Alloc("keys", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(0, bytes.Repeat([]byte{0xFF}, 16)); err != nil {
		t.Fatal(err)
	}
	r.Zero()
	buf := make([]byte, 16)
	if err := r.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 16)) {
		t.Error("Zero did not scrub region")
	}
}

func TestSnapshotSortedAndGuarded(t *testing.T) {
	s := NewSpace("p")
	var regions []*Region
	for i := 0; i < 5; i++ {
		r, err := s.Alloc("r", 4096)
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	snap := s.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d regions", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Base <= snap[i-1].Base {
			t.Error("snapshot not sorted by base")
		}
		gap := snap[i].Base - (snap[i-1].Base + uint64(snap[i-1].Size))
		if gap == 0 {
			t.Error("no guard gap between regions")
		}
	}
	_ = regions
}

// Property: data written at any offset is found by Scan at base+offset.
func TestScan_Property(t *testing.T) {
	prop := func(payload [8]byte, off uint16) bool {
		// Avoid degenerate all-equal patterns that self-overlap.
		pattern := payload[:]
		s := NewSpace("p")
		r, err := s.Alloc("x", 70000)
		if err != nil {
			return false
		}
		o := int(off)
		if err := r.Write(o, pattern); err != nil {
			return false
		}
		for _, m := range s.Scan(pattern) {
			if m.Addr == r.Base()+uint64(o) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewSpace("p")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r, err := s.Alloc("c", 128)
				if err != nil {
					t.Error(err)
					return
				}
				if err := r.Write(0, []byte("kbox")); err != nil {
					t.Error(err)
					return
				}
				s.Scan([]byte("kbox"))
				s.Free(r)
			}
		}()
	}
	wg.Wait()
}
