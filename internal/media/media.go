// Package media generates the synthetic movies the study streams and
// packages them the way real OTT pipelines do: a quality ladder of video
// representations, audio tracks per language, WebVTT subtitles, all wrapped
// as fragmented MP4 and encrypted per the deployment's key policy.
//
// Samples carry a recognizable plaintext header, so "can a vanilla player
// read this file?" — the probe the paper runs on downloaded assets — is a
// deterministic check (IsPlayable) rather than a human judgment.
package media

import (
	"fmt"
	"strings"

	"repro/internal/mp4"
)

// Track kinds.
const (
	KindVideo    = "video"
	KindAudio    = "audio"
	KindSubtitle = "subtitle"
)

// sampleMagic prefixes every synthetic media sample; a clear sample is
// "playable" iff the prefix survives.
const sampleMagic = "MEDIA|"

// Quality is one rung of the video ladder.
type Quality struct {
	Name      string
	Width     uint16
	Height    uint16
	Bandwidth uint32
}

// DefaultLadder is the video quality ladder used throughout the study. The
// 540p rung is qHD (960x540) — the best quality the paper's attack
// recovers, since license servers cap L3 clients there.
var DefaultLadder = []Quality{
	{Name: "234p", Width: 416, Height: 234, Bandwidth: 300_000},
	{Name: "540p", Width: 960, Height: 540, Bandwidth: 1_200_000},
	{Name: "720p", Width: 1280, Height: 720, Bandwidth: 2_500_000},
	{Name: "1080p", Width: 1920, Height: 1080, Bandwidth: 5_000_000},
}

// Track is one generated elementary stream, as init + media segments.
type Track struct {
	Kind     string
	Lang     string  // audio/subtitle language; empty for video
	Quality  Quality // video only
	Init     *mp4.InitSegment
	Segments []*mp4.MediaSegment
}

// GenerateOptions sizes a generated title.
type GenerateOptions struct {
	SegmentsPerTrack  int
	SamplesPerSegment int
	SampleBytes       int
	AudioLangs        []string
	SubtitleLangs     []string
	Ladder            []Quality
}

// DefaultGenerateOptions keeps worlds small and fast while exercising every
// code path (multiple segments, samples and languages).
func DefaultGenerateOptions() GenerateOptions {
	return GenerateOptions{
		SegmentsPerTrack:  2,
		SamplesPerSegment: 4,
		SampleBytes:       512,
		AudioLangs:        []string{"en", "fr"},
		SubtitleLangs:     []string{"en", "fr"},
		Ladder:            DefaultLadder,
	}
}

// GenerateTitle produces every track of one content: the video ladder,
// audio per language, subtitles per language.
func GenerateTitle(contentID string, opts GenerateOptions) []Track {
	tracks := make([]Track, 0, len(opts.Ladder)+len(opts.AudioLangs)+len(opts.SubtitleLangs))
	trackID := uint32(1)
	for _, q := range opts.Ladder {
		tracks = append(tracks, generateTrack(contentID, KindVideo, q.Name, "", q, trackID, opts))
		trackID++
	}
	for _, lang := range opts.AudioLangs {
		tracks = append(tracks, generateTrack(contentID, KindAudio, "audio-"+lang, lang, Quality{}, trackID, opts))
		trackID++
	}
	for _, lang := range opts.SubtitleLangs {
		tracks = append(tracks, generateTrack(contentID, KindSubtitle, "sub-"+lang, lang, Quality{}, trackID, opts))
		trackID++
	}
	return tracks
}

// generateTrack builds one track's init segment and media segments with
// deterministic, recognizable sample payloads.
func generateTrack(contentID, kind, variant, lang string, q Quality, trackID uint32, opts GenerateOptions) Track {
	var handler, codec string
	var timescale uint32
	switch kind {
	case KindVideo:
		handler, codec, timescale = mp4.HandlerVideo, "avc1", 90000
	case KindAudio:
		handler, codec, timescale = mp4.HandlerAudio, "mp4a", 48000
	default:
		handler, codec, timescale = mp4.HandlerSubtitle, "wvtt", 1000
	}
	init := &mp4.InitSegment{Track: mp4.TrackInfo{
		TrackID:   trackID,
		Handler:   handler,
		Codec:     codec,
		Timescale: timescale,
		Width:     q.Width,
		Height:    q.Height,
	}}

	segments := make([]*mp4.MediaSegment, 0, opts.SegmentsPerTrack)
	for segIdx := 0; segIdx < opts.SegmentsPerTrack; segIdx++ {
		seg := &mp4.MediaSegment{
			SequenceNumber: uint32(segIdx + 1),
			TrackID:        trackID,
			BaseDecodeTime: uint64(segIdx) * uint64(timescale),
		}
		for s := 0; s < opts.SamplesPerSegment; s++ {
			seg.SampleData = append(seg.SampleData,
				SamplePayload(contentID, variant, segIdx, s, opts.SampleBytes))
		}
		segments = append(segments, seg)
	}
	return Track{Kind: kind, Lang: lang, Quality: q, Init: init, Segments: segments}
}

// SamplePayload builds one deterministic sample: the playability magic, a
// coordinate header, then filler.
func SamplePayload(contentID, variant string, segIdx, sampleIdx, size int) []byte {
	header := fmt.Sprintf("%s%s|%s|seg%d|smp%d|", sampleMagic, contentID, variant, segIdx, sampleIdx)
	if size < len(header) {
		size = len(header)
	}
	out := make([]byte, size)
	copy(out, header)
	for i := len(header); i < size; i++ {
		out[i] = byte('a' + (i+segIdx+sampleIdx)%26)
	}
	return out
}

// PlayabilityMagic returns the byte pattern marking clear media samples;
// memory-scanning attacks (the MovieStealer baseline) search for it.
func PlayabilityMagic() []byte { return []byte(sampleMagic) }

// IsPlayable reports whether a sample reads as valid clear media — the
// probe run on downloaded assets. Encrypted samples fail it with
// overwhelming probability.
func IsPlayable(sample []byte) bool {
	return len(sample) >= len(sampleMagic) && string(sample[:len(sampleMagic)]) == sampleMagic
}

// SegmentPlayable reports whether every sample of a parsed media segment is
// readable clear media.
func SegmentPlayable(seg *mp4.MediaSegment) bool {
	if len(seg.SampleData) == 0 {
		return false
	}
	for _, s := range seg.SampleData {
		if !IsPlayable(s) {
			return false
		}
	}
	return true
}

// GenerateSubtitleFile renders a clear WebVTT document for one language;
// subtitles are distributed as standalone text files, not MP4 (matching
// the ecosystem the paper observed, where no encrypted-subtitle API even
// exists).
func GenerateSubtitleFile(contentID, lang string, cues int) []byte {
	var b strings.Builder
	b.WriteString("WEBVTT\n\n")
	for i := 0; i < cues; i++ {
		fmt.Fprintf(&b, "%02d:00.000 --> %02d:59.000\n[%s/%s] subtitle cue %d\n\n", i, i, contentID, lang, i)
	}
	return []byte(b.String())
}

// SubtitleReadable reports whether a subtitle asset is readable text (the
// paper's ASCII check on English subtitles).
func SubtitleReadable(data []byte) bool {
	if len(data) < 6 || string(data[:6]) != "WEBVTT" {
		return false
	}
	for _, c := range data {
		if c != '\n' && c != '\r' && c != '\t' && (c < 0x20 || c > 0x7E) {
			return false
		}
	}
	return true
}
