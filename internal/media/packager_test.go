package media

import (
	"testing"

	"repro/internal/cenc"
	"repro/internal/dash"
	"repro/internal/license"
	"repro/internal/mp4"
	"repro/internal/wvcrypto"
)

func packageWith(t *testing.T, policy KeyPolicy) *Packaged {
	t.Helper()
	tracks := GenerateTitle("movie-1", DefaultGenerateOptions())
	p, err := Package("movie-1", tracks, policy, wvcrypto.NewDeterministicReader("pack"))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func keysByTrack(p *Packaged) (video, audio []license.KeyEntry) {
	for _, k := range p.Keys {
		switch k.Track {
		case license.TrackVideo:
			video = append(video, k)
		case license.TrackAudio:
			audio = append(audio, k)
		}
	}
	return video, audio
}

func TestPackage_RecommendedPolicy(t *testing.T) {
	p := packageWith(t, KeyPolicy{EncryptAudio: true, DistinctAudioKey: true})
	video, audio := keysByTrack(p)
	if len(video) != 4 {
		t.Errorf("video keys = %d, want 4 (one per rung)", len(video))
	}
	if len(audio) != 1 {
		t.Errorf("audio keys = %d, want 1 distinct", len(audio))
	}
	kids := make(map[[16]byte]bool)
	for _, k := range p.Keys {
		if kids[k.KID] {
			t.Error("duplicate KID across keys")
		}
		kids[k.KID] = true
	}
}

func TestPackage_MinimumSharedKey(t *testing.T) {
	p := packageWith(t, KeyPolicy{EncryptAudio: true, DistinctAudioKey: false})
	video, audio := keysByTrack(p)
	if len(video) != 4 || len(audio) != 0 {
		t.Errorf("video/audio keys = %d/%d, want 4/0 (audio reuses video key)", len(video), len(audio))
	}
	// Audio representations carry the lowest video rung's KID.
	audioSet, err := p.MPD.FindAdaptationSet(dash.ContentAudio, "en")
	if err != nil {
		t.Fatal(err)
	}
	audioKID := audioSet.Representations[0].KID()
	var lowest license.KeyEntry
	for _, k := range video {
		if lowest.Key == nil || k.MaxHeight < lowest.MaxHeight {
			lowest = k
		}
	}
	if audioKID != cenc.KIDToString(lowest.KID) {
		t.Errorf("audio kid %s != lowest video kid %s", audioKID, cenc.KIDToString(lowest.KID))
	}
}

func TestPackage_ClearAudioPolicy(t *testing.T) {
	p := packageWith(t, KeyPolicy{EncryptAudio: false})
	// Audio init segments are unprotected and samples playable.
	init, ok := p.Files["movie-1/audio/en/init.mp4"]
	if !ok {
		t.Fatal("missing audio init")
	}
	prot, err := mp4.IsProtected(init)
	if err != nil {
		t.Fatal(err)
	}
	if prot {
		t.Error("clear-audio policy produced protected audio init")
	}
	seg, err := mp4.ParseMediaSegment(p.Files["movie-1/audio/en/seg1.m4s"])
	if err != nil {
		t.Fatal(err)
	}
	if !SegmentPlayable(seg) {
		t.Error("clear audio segment not playable")
	}
}

func TestPackage_VideoAlwaysEncrypted(t *testing.T) {
	for _, policy := range []KeyPolicy{{}, {EncryptAudio: true}, {EncryptAudio: true, DistinctAudioKey: true}} {
		p := packageWith(t, policy)
		init := p.Files["movie-1/video/540p/init.mp4"]
		prot, err := mp4.IsProtected(init)
		if err != nil {
			t.Fatal(err)
		}
		if !prot {
			t.Error("video init unprotected")
		}
		seg, err := mp4.ParseMediaSegment(p.Files["movie-1/video/540p/seg1.m4s"])
		if err != nil {
			t.Fatal(err)
		}
		if seg.Encryption == nil {
			t.Fatal("video segment has no senc")
		}
		if SegmentPlayable(seg) {
			t.Error("encrypted video segment is playable")
		}
	}
}

func TestPackage_EncryptedSegmentsDecryptWithRegisteredKeys(t *testing.T) {
	p := packageWith(t, KeyPolicy{EncryptAudio: true, DistinctAudioKey: true})
	// Find the 540p video key via the MPD KID.
	videoSet, err := p.MPD.FindAdaptationSet(dash.ContentVideo, "")
	if err != nil {
		t.Fatal(err)
	}
	var kidHex string
	for _, rep := range videoSet.Representations {
		if rep.Height == 540 {
			kidHex = rep.KID()
		}
	}
	kid, err := cenc.ParseKID(kidHex)
	if err != nil {
		t.Fatal(err)
	}
	var key []byte
	for _, k := range p.Keys {
		if k.KID == kid {
			key = k.Key
		}
	}
	if key == nil {
		t.Fatal("540p key not registered")
	}
	seg, err := mp4.ParseMediaSegment(p.Files["movie-1/video/540p/seg1.m4s"])
	if err != nil {
		t.Fatal(err)
	}
	if err := cenc.DecryptSegment(mp4.SchemeCENC, key, seg); err != nil {
		t.Fatal(err)
	}
	if !SegmentPlayable(seg) {
		t.Error("decrypted segment not playable")
	}
}

func TestPackage_SubtitlesAlwaysClear(t *testing.T) {
	p := packageWith(t, KeyPolicy{EncryptAudio: true, DistinctAudioKey: true})
	vtt, ok := p.Files["movie-1/subs/en.vtt"]
	if !ok {
		t.Fatal("missing subtitle file")
	}
	if !SubtitleReadable(vtt) {
		t.Error("subtitle not readable")
	}
}

func TestPackage_MPDCoversAllFiles(t *testing.T) {
	p := packageWith(t, KeyPolicy{EncryptAudio: true})
	urls := p.MPD.AllURLs()
	if len(urls) == 0 {
		t.Fatal("no urls in mpd")
	}
	for _, u := range urls {
		if _, ok := p.Files[u]; !ok {
			t.Errorf("mpd url %q has no file", u)
		}
	}
	// Every rung appears with distinct KIDs (per-resolution keys).
	kids := make(map[string]bool)
	for _, u := range p.MPD.KeyUsage() {
		if u.ContentType == dash.ContentVideo {
			if u.KID == "" {
				t.Error("video representation without kid")
			}
			if kids[u.KID] {
				t.Error("video rungs share a kid")
			}
			kids[u.KID] = true
		}
	}
}

func TestPackage_NoVideo(t *testing.T) {
	tracks := []Track{{Kind: KindAudio, Lang: "en",
		Init:     &mp4.InitSegment{Track: mp4.TrackInfo{TrackID: 1, Handler: mp4.HandlerAudio, Codec: "mp4a", Timescale: 48000}},
		Segments: nil}}
	if _, err := Package("x", tracks, KeyPolicy{}, wvcrypto.NewDeterministicReader("n")); err == nil {
		t.Error("want error for title without video")
	}
}

func TestPackage_DoesNotMutateSourceTracks(t *testing.T) {
	tracks := GenerateTitle("movie-1", DefaultGenerateOptions())
	before := string(tracks[0].Segments[0].SampleData[0])
	if _, err := Package("movie-1", tracks, KeyPolicy{EncryptAudio: true}, wvcrypto.NewDeterministicReader("p")); err != nil {
		t.Fatal(err)
	}
	if string(tracks[0].Segments[0].SampleData[0]) != before {
		t.Error("packaging mutated source track samples")
	}
}

func BenchmarkPackageTitle(b *testing.B) {
	tracks := GenerateTitle("bench-movie", DefaultGenerateOptions())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Package("bench-movie", tracks,
			KeyPolicy{EncryptAudio: true, DistinctAudioKey: true},
			wvcrypto.NewDeterministicReader("bench-pack")); err != nil {
			b.Fatal(err)
		}
	}
}

func TestConvertToTemplates(t *testing.T) {
	p := packageWith(t, KeyPolicy{EncryptAudio: true})
	before := p.MPD.AllURLs()
	ConvertToTemplates(p.MPD)

	// Video/audio representations switched to templates; subtitles (not
	// matching the naming) keep their explicit lists.
	videoSet, err := p.MPD.FindAdaptationSet(dash.ContentVideo, "")
	if err != nil {
		t.Fatal(err)
	}
	if videoSet.Representations[0].SegmentTemplate == nil {
		t.Error("video representation not templated")
	}
	if videoSet.Representations[0].SegmentList != nil {
		t.Error("explicit list left behind")
	}
	subSet, err := p.MPD.FindAdaptationSet(dash.ContentSubtitle, "")
	if err != nil {
		t.Fatal(err)
	}
	if subSet.Representations[0].SegmentTemplate != nil {
		t.Error("subtitle representation templated despite naming mismatch")
	}

	// URL enumeration is unchanged: templates expand to the same set.
	after := p.MPD.AllURLs()
	if len(before) != len(after) {
		t.Fatalf("url count changed: %d -> %d", len(before), len(after))
	}
	seen := make(map[string]bool, len(before))
	for _, u := range before {
		seen[u] = true
	}
	for _, u := range after {
		if !seen[u] {
			t.Errorf("template expansion invented url %q", u)
		}
	}
}
