package media

import (
	"strings"
	"testing"

	"repro/internal/mp4"
)

func TestGenerateTitle_Shape(t *testing.T) {
	opts := DefaultGenerateOptions()
	tracks := GenerateTitle("movie-1", opts)
	want := len(opts.Ladder) + len(opts.AudioLangs) + len(opts.SubtitleLangs)
	if len(tracks) != want {
		t.Fatalf("got %d tracks, want %d", len(tracks), want)
	}
	var video, audio, subs int
	seenTrackIDs := make(map[uint32]bool)
	for _, tr := range tracks {
		if seenTrackIDs[tr.Init.Track.TrackID] {
			t.Errorf("duplicate track id %d", tr.Init.Track.TrackID)
		}
		seenTrackIDs[tr.Init.Track.TrackID] = true
		switch tr.Kind {
		case KindVideo:
			video++
			if tr.Quality.Height == 0 {
				t.Error("video track without quality")
			}
			if tr.Init.Track.Handler != mp4.HandlerVideo {
				t.Error("video handler mismatch")
			}
		case KindAudio:
			audio++
			if tr.Lang == "" {
				t.Error("audio track without language")
			}
		case KindSubtitle:
			subs++
		}
		if len(tr.Segments) != opts.SegmentsPerTrack {
			t.Errorf("track has %d segments", len(tr.Segments))
		}
		for _, seg := range tr.Segments {
			if len(seg.SampleData) != opts.SamplesPerSegment {
				t.Errorf("segment has %d samples", len(seg.SampleData))
			}
		}
	}
	if video != 4 || audio != 2 || subs != 2 {
		t.Errorf("video/audio/subs = %d/%d/%d", video, audio, subs)
	}
}

func TestGenerate_Deterministic(t *testing.T) {
	a := GenerateTitle("movie-1", DefaultGenerateOptions())
	b := GenerateTitle("movie-1", DefaultGenerateOptions())
	if string(a[0].Segments[0].SampleData[0]) != string(b[0].Segments[0].SampleData[0]) {
		t.Error("generation not deterministic")
	}
	c := GenerateTitle("movie-2", DefaultGenerateOptions())
	if string(a[0].Segments[0].SampleData[0]) == string(c[0].Segments[0].SampleData[0]) {
		t.Error("different titles share sample bytes")
	}
}

func TestIsPlayable(t *testing.T) {
	s := SamplePayload("movie-1", "540p", 0, 0, 256)
	if !IsPlayable(s) {
		t.Error("generated sample not playable")
	}
	if IsPlayable([]byte("garbage bytes here")) {
		t.Error("garbage playable")
	}
	if IsPlayable(nil) {
		t.Error("nil playable")
	}
	// An "encrypted" sample with only the first 4 bytes clear fails.
	enc := append([]byte(nil), s...)
	for i := clearPrefixBytes; i < len(enc); i++ {
		enc[i] ^= 0xA5
	}
	if IsPlayable(enc) {
		t.Error("garbled sample playable")
	}
}

func TestSegmentPlayable(t *testing.T) {
	tracks := GenerateTitle("movie-1", DefaultGenerateOptions())
	if !SegmentPlayable(tracks[0].Segments[0]) {
		t.Error("clear generated segment not playable")
	}
	if SegmentPlayable(&mp4.MediaSegment{}) {
		t.Error("empty segment playable")
	}
}

func TestSamplePayload_TinySize(t *testing.T) {
	s := SamplePayload("m", "v", 0, 0, 1)
	if !IsPlayable(s) {
		t.Error("tiny sample lost its header")
	}
}

func TestSubtitles(t *testing.T) {
	vtt := GenerateSubtitleFile("movie-1", "en", 3)
	if !SubtitleReadable(vtt) {
		t.Error("generated subtitle not readable")
	}
	if !strings.Contains(string(vtt), "movie-1/en") {
		t.Error("subtitle missing identity")
	}
	if SubtitleReadable([]byte{0x00, 0x01, 0x02}) {
		t.Error("binary blob readable")
	}
	if SubtitleReadable(append([]byte("WEBVTT\n"), 0xFF, 0xFE)) {
		t.Error("encrypted-looking subtitle readable")
	}
}
