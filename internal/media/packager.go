package media

import (
	"encoding/base64"
	"fmt"
	"io"

	"repro/internal/cenc"
	"repro/internal/dash"
	"repro/internal/license"
	"repro/internal/mp4"
)

// clearPrefixBytes is the number of leading clear bytes per encrypted
// sample (subsample encryption keeping a short codec header readable). It
// is deliberately shorter than the playability magic, so encrypted samples
// always fail IsPlayable.
const clearPrefixBytes = 4

// KeyPolicy captures how one OTT deployment assigns content keys — the
// axis of the paper's Q2/Q3 findings.
type KeyPolicy struct {
	// EncryptAudio protects audio tracks at all. Netflix, myCanal and
	// Salto ship audio in clear (false).
	EncryptAudio bool
	// DistinctAudioKey gives audio its own key (the Widevine/EME
	// recommendation, followed only by Amazon). When false, audio reuses
	// the lowest video rung's key.
	DistinctAudioKey bool
	// Scheme is the CENC scheme; empty defaults to "cenc" (AES-CTR).
	Scheme string
}

// Packaged is a fully packaged title: the CDN file set, the manifest, and
// the key set to register with the license server.
type Packaged struct {
	ContentID string
	// Files maps CDN paths to bytes (init/media segments, subtitle files).
	Files map[string][]byte
	// MPD is the generated manifest.
	MPD *dash.MPD
	// Keys is the content key set for the license server's KeyDB.
	Keys []license.KeyEntry
}

// Package encrypts and lays out a generated title according to the key
// policy, producing everything a CDN and license server need to serve it.
func Package(contentID string, tracks []Track, policy KeyPolicy, rand io.Reader) (*Packaged, error) {
	scheme := policy.Scheme
	if scheme == "" {
		scheme = mp4.SchemeCENC
	}

	out := &Packaged{
		ContentID: contentID,
		Files:     make(map[string][]byte),
	}

	// Mint video keys: one per ladder rung (every app in the study does
	// per-resolution keys), plus the audio key per policy.
	videoKeys := make(map[string]license.KeyEntry) // quality name → entry
	var lowestRung *license.KeyEntry
	for _, t := range tracks {
		if t.Kind != KindVideo {
			continue
		}
		key, err := cenc.RandomKey(rand)
		if err != nil {
			return nil, err
		}
		kid, err := cenc.RandomKID(rand)
		if err != nil {
			return nil, err
		}
		entry := license.KeyEntry{KID: kid, Key: key, Track: license.TrackVideo, MaxHeight: t.Quality.Height}
		videoKeys[t.Quality.Name] = entry
		out.Keys = append(out.Keys, entry)
		if lowestRung == nil || t.Quality.Height < lowestRung.MaxHeight {
			e := entry
			lowestRung = &e
		}
	}
	if lowestRung == nil {
		return nil, fmt.Errorf("media: title %q has no video tracks", contentID)
	}

	var audioKey *license.KeyEntry
	if policy.EncryptAudio {
		if policy.DistinctAudioKey {
			key, err := cenc.RandomKey(rand)
			if err != nil {
				return nil, err
			}
			kid, err := cenc.RandomKID(rand)
			if err != nil {
				return nil, err
			}
			audioKey = &license.KeyEntry{KID: kid, Key: key, Track: license.TrackAudio}
			out.Keys = append(out.Keys, *audioKey)
		} else {
			// The common shortcut: audio shares the lowest video rung key.
			audioKey = lowestRung
		}
	}

	mpd := &dash.MPD{
		Profiles: "urn:mpeg:dash:profile:isoff-on-demand:2011",
		Type:     "static",
		Duration: "PT2M",
		Periods:  []dash.Period{{ID: "p0"}},
	}
	videoSet := dash.AdaptationSet{ContentType: dash.ContentVideo, MimeType: "video/mp4"}
	videoSet.ContentProtections = []dash.ContentProtection{{
		SchemeIDURI: dash.WidevineSchemeIDURI,
		PSSH:        base64.StdEncoding.EncodeToString([]byte(contentID)),
	}}
	audioSets := make(map[string]*dash.AdaptationSet)
	subSets := make(map[string]*dash.AdaptationSet)

	for i := range tracks {
		t := &tracks[i]
		switch t.Kind {
		case KindVideo:
			entry := videoKeys[t.Quality.Name]
			rep, err := packageMP4Track(out, contentID, t,
				fmt.Sprintf("%s/video/%s/", contentID, t.Quality.Name),
				"v-"+t.Quality.Name, &entry, scheme, rand)
			if err != nil {
				return nil, err
			}
			rep.Width, rep.Height, rep.Bandwidth = t.Quality.Width, t.Quality.Height, t.Quality.Bandwidth
			videoSet.Representations = append(videoSet.Representations, *rep)
		case KindAudio:
			rep, err := packageMP4Track(out, contentID, t,
				fmt.Sprintf("%s/audio/%s/", contentID, t.Lang),
				"a-"+t.Lang, audioKey, scheme, rand)
			if err != nil {
				return nil, err
			}
			rep.Bandwidth = 128_000
			set, ok := audioSets[t.Lang]
			if !ok {
				set = &dash.AdaptationSet{ContentType: dash.ContentAudio, MimeType: "audio/mp4", Lang: t.Lang}
				audioSets[t.Lang] = set
			}
			set.Representations = append(set.Representations, *rep)
		case KindSubtitle:
			path := fmt.Sprintf("%s/subs/%s.vtt", contentID, t.Lang)
			out.Files[path] = GenerateSubtitleFile(contentID, t.Lang, 4)
			subSets[t.Lang] = &dash.AdaptationSet{
				ContentType: dash.ContentSubtitle,
				MimeType:    "text/vtt",
				Lang:        t.Lang,
				Representations: []dash.Representation{{
					ID: "s-" + t.Lang, Bandwidth: 1000,
					SegmentList: &dash.SegmentList{SegmentURLs: []dash.SegmentURL{{SourceURL: path}}},
				}},
			}
		default:
			return nil, fmt.Errorf("media: unknown track kind %q", t.Kind)
		}
	}

	mpd.Periods[0].AdaptationSets = append(mpd.Periods[0].AdaptationSets, videoSet)
	for _, lang := range sortedKeys(audioSets) {
		mpd.Periods[0].AdaptationSets = append(mpd.Periods[0].AdaptationSets, *audioSets[lang])
	}
	for _, lang := range sortedKeys(subSets) {
		mpd.Periods[0].AdaptationSets = append(mpd.Periods[0].AdaptationSets, *subSets[lang])
	}
	out.MPD = mpd
	return out, nil
}

// packageMP4Track serializes (and, when entry != nil, encrypts) one MP4
// track into the file set and returns its DASH representation.
func packageMP4Track(out *Packaged, contentID string, t *Track, dir, repID string, entry *license.KeyEntry, scheme string, rand io.Reader) (*dash.Representation, error) {
	init := *t.Init
	track := init.Track
	if entry != nil {
		track.Protection = &mp4.ProtectionInfo{
			Scheme:     scheme,
			DefaultKID: entry.KID,
			PSSH: []mp4.PSSH{{
				SystemID: mp4.WidevineSystemID,
				KIDs:     [][16]byte{entry.KID},
				Data:     []byte(contentID),
			}},
		}
	}
	init.Track = track
	out.Files[dir+"init.mp4"] = init.Marshal()

	rep := &dash.Representation{
		ID:      repID,
		Codecs:  track.Codec,
		BaseURL: dir,
		SegmentList: &dash.SegmentList{
			Initialization: &dash.SegmentURL{SourceURL: "init.mp4"},
		},
	}
	if entry != nil {
		rep.ContentProtections = []dash.ContentProtection{{
			SchemeIDURI: dash.MP4ProtectionSchemeIDURI,
			Value:       scheme,
			DefaultKID:  cenc.KIDToString(entry.KID),
		}}
	}

	for i, seg := range t.Segments {
		// Deep-copy the segment so packaging never mutates the source.
		cp := &mp4.MediaSegment{
			SequenceNumber: seg.SequenceNumber,
			TrackID:        seg.TrackID,
			BaseDecodeTime: seg.BaseDecodeTime,
			SampleData:     make([][]byte, len(seg.SampleData)),
		}
		for j, s := range seg.SampleData {
			cp.SampleData[j] = append([]byte(nil), s...)
		}
		if entry != nil {
			enc, err := cenc.NewEncryptor(scheme, entry.Key, rand)
			if err != nil {
				return nil, err
			}
			if err := enc.EncryptSegment(cp, clearPrefixBytes); err != nil {
				return nil, fmt.Errorf("media: encrypt %s seg %d: %w", repID, i, err)
			}
		}
		wire, err := cp.Marshal()
		if err != nil {
			return nil, fmt.Errorf("media: marshal %s seg %d: %w", repID, i, err)
		}
		name := fmt.Sprintf("seg%d.m4s", i+1)
		out.Files[dir+name] = wire
		rep.SegmentList.SegmentURLs = append(rep.SegmentList.SegmentURLs, dash.SegmentURL{SourceURL: name})
	}
	return rep, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// ConvertToTemplates rewrites a packaged manifest's explicit segment lists
// into SegmentTemplate addressing (init.mp4 / seg$Number$.m4s), the form
// most production MPDs use. It only converts representations whose file
// naming matches the packager's layout; others keep their explicit lists.
func ConvertToTemplates(mpd *dash.MPD) {
	for pi := range mpd.Periods {
		for ai := range mpd.Periods[pi].AdaptationSets {
			set := &mpd.Periods[pi].AdaptationSets[ai]
			for ri := range set.Representations {
				rep := &set.Representations[ri]
				list := rep.SegmentList
				if list == nil || list.Initialization == nil || list.Initialization.SourceURL != "init.mp4" {
					continue
				}
				ok := true
				for i, su := range list.SegmentURLs {
					if su.SourceURL != fmt.Sprintf("seg%d.m4s", i+1) {
						ok = false
						break
					}
				}
				if !ok || len(list.SegmentURLs) == 0 {
					continue
				}
				rep.SegmentTemplate = &dash.SegmentTemplate{
					Initialization: "init.mp4",
					Media:          "seg$Number$.m4s",
					StartNumber:    1,
					SegmentCount:   uint32(len(list.SegmentURLs)),
				}
				rep.SegmentList = nil
			}
		}
	}
}
