package serve

import (
	"context"
	"sync"
	"time"

	"repro/internal/wideleak"
	"repro/internal/wideleak/probe"
)

// JobState is a job's lifecycle phase.
type JobState string

// Job states. Queued and Running are live; Done, Failed and Canceled are
// terminal. A cache-hit submission mints a job that is born Done.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// studyResult is one completed study, fully encoded: the table in every
// supported format, the marshaled event log, and the run's accounting.
// Results are immutable once built, so the cache shares them freely.
type studyResult struct {
	tables     map[string][]byte // format → bytes (txt, csv, json)
	events     []byte            // probe.Log marshaled as JSON
	eventCount int

	rows            int
	observations    int // instrumented observation runs the job executed
	legacyPlaybacks int
	wall            time.Duration
	virtual         time.Duration

	// worldHit records whether the run restored a tier-2 world snapshot
	// (true) or built its world cold (false) — the provenance the fleet
	// load harness reads back through headers and job status.
	worldHit bool

	// cellsRecombined records that the run was assembled purely from
	// memoized probe cells: no world was built or restored and no probe
	// executed — the cell-aware result tier's zero-work path.
	cellsRecombined bool
}

// Job is one study submission: the canonical request, its lifecycle
// state, the structured event log, and — once terminal — the result.
type Job struct {
	ID   string
	Key  string
	Spec wideleak.RunSpec // canonical form

	log *probe.Log

	mu        sync.Mutex
	state     JobState
	cached    bool
	errText   string
	result    *studyResult
	cancel    context.CancelFunc
	cancelled bool
	subs      []chan probe.Event
	done      chan struct{}

	submitted time.Time
	started   time.Time
	finished  time.Time
}

func newJob(id, key string, spec wideleak.RunSpec) *Job {
	return &Job{
		ID:        id,
		Key:       key,
		Spec:      spec,
		log:       &probe.Log{},
		state:     JobQueued,
		done:      make(chan struct{}),
		submitted: time.Now(),
	}
}

// State returns the current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done exposes the completion channel (closed on any terminal state).
func (j *Job) Done() <-chan struct{} { return j.done }

// start transitions queued → running and installs the cancel hook. It
// reports false when the job was already cancelled (or otherwise
// terminal) before a worker picked it up.
func (j *Job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	if j.cancelled {
		cancel()
	}
	return true
}

// finish moves the job to a terminal state, publishes the result, closes
// every event subscription and the done channel. Finishing a job twice
// is a no-op (a queued job cancelled by the client stays cancelled even
// when a worker later drains it off the queue).
func (j *Job) finish(state JobState, res *studyResult, errText string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = state
	j.result = res
	j.errText = errText
	j.finished = time.Now()
	j.cancel = nil
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)
}

// requestCancel asks the job to stop: a running job has its context
// cancelled, a queued job is finished as canceled immediately. Returns
// false when the job is already terminal.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.cancelled = true
	if j.cancel != nil {
		j.mu.Unlock()
		j.cancel()
		return true
	}
	// Still queued: terminal-ize in place; the worker will skip it.
	j.state = JobCanceled
	j.errText = "canceled before start"
	j.finished = time.Now()
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)
	j.mu.Unlock()
	return true
}

// record appends one pipeline event to the job's log and fans the
// stamped copy out to live subscribers. Slow subscribers never block the
// study: a full channel drops the event for that subscriber only (the
// events endpoint re-reads the full log, so nothing is lost at rest).
func (j *Job) record(ev probe.Event) probe.Event {
	j.mu.Lock()
	stamped := j.log.Append(ev)
	for _, ch := range j.subs {
		select {
		case ch <- stamped:
		default:
		}
	}
	j.mu.Unlock()
	return stamped
}

// subscribe returns a snapshot of everything recorded so far plus a
// channel carrying every later event, closed when the job finishes. A
// nil channel means the job was already terminal — the snapshot is the
// whole stream.
func (j *Job) subscribe() ([]probe.Event, <-chan probe.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	snapshot := j.log.Events()
	if j.state.terminal() {
		return snapshot, nil
	}
	ch := make(chan probe.Event, 256)
	j.subs = append(j.subs, ch)
	return snapshot, ch
}

// jobStatus is the wire shape of GET /v1/studies/{id}.
type jobStatus struct {
	ID      string           `json:"id"`
	State   JobState         `json:"state"`
	Cached  bool             `json:"cached"`
	Request wideleak.RunSpec `json:"request"`
	Error   string           `json:"error,omitempty"`

	Rows            int   `json:"rows,omitempty"`
	Observations    int   `json:"observations"`
	LegacyPlaybacks int   `json:"legacy_playbacks"`
	Events          int   `json:"events"`
	WallMS          int64 `json:"wall_ms,omitempty"`
	VirtualMS       int64 `json:"virtual_ms,omitempty"`

	// WorldCache reports the done run's tier-2 provenance: "hit" when it
	// restored a warmed world snapshot, "miss" when it built cold. Empty
	// until the job is done.
	WorldCache string `json:"world_cache,omitempty"`

	// CellCache is "hit" when the run was reassembled purely from
	// memoized probe cells (zero device work without a tier-1 hit).
	CellCache string `json:"cell_cache,omitempty"`

	TableURL  string `json:"table_url,omitempty"`
	EventsURL string `json:"events_url,omitempty"`
}

// status snapshots the job for the API. A cached job reports zero
// observations and playbacks: it did no device work of its own.
func (j *Job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		ID:      j.ID,
		State:   j.state,
		Cached:  j.cached,
		Request: j.Spec,
		Error:   j.errText,
		Events:  j.log.Len(),
	}
	if j.result != nil {
		st.Rows = j.result.rows
		st.Events = j.result.eventCount
		st.WallMS = j.result.wall.Milliseconds()
		st.VirtualMS = j.result.virtual.Milliseconds()
		st.WorldCache = worldCacheLabel(j.result.worldHit)
		if j.result.cellsRecombined {
			st.CellCache = "hit"
		}
		if !j.cached {
			st.Observations = j.result.observations
			st.LegacyPlaybacks = j.result.legacyPlaybacks
		}
	}
	if j.state == JobDone {
		st.TableURL = "/v1/studies/" + j.ID + "/table"
		st.EventsURL = "/v1/studies/" + j.ID + "/events"
	}
	return st
}

// snapshotResult returns the published result, nil until Done.
func (j *Job) snapshotResult() *studyResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone {
		return nil
	}
	return j.result
}

// provenance reports the done job's cache attribution — whether the job
// itself was served from the tier-1 result cache, and whether the run
// that produced its bytes restored a tier-2 world snapshot. ok is false
// until the job is done.
func (j *Job) provenance() (cached, worldHit, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone || j.result == nil {
		return false, false, false
	}
	return j.cached, j.result.worldHit, true
}

// worldCacheLabel renders tier-2 provenance the way headers and job
// status spell it.
func worldCacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}
