package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/netsim"
	"repro/internal/wideleak/probe"
)

// Metrics is the daemon's instrumentation: hand-rolled counters, gauges
// and histograms rendered in the Prometheus text exposition format, fed
// from the study engine's probe.Event stream and the network layer's
// RetryObserver. Everything is safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	submitted   int64
	shed        int64
	coalesced   int64
	cacheHits   int64
	cacheMisses int64
	degraded    int64
	jobs        map[string]int64 // terminal state → count
	retries     map[string]int64 // host → masked transient attempts

	probeWall    *histogram
	probeVirtual *histogram

	// queueDepth and inFlight are sampled live at render time.
	queueDepth func() int
	inFlight   func() int
}

func newMetrics(queueDepth, inFlight func() int) *Metrics {
	return &Metrics{
		jobs:    make(map[string]int64),
		retries: make(map[string]int64),
		// Probe wall times are sub-second on the simulator; virtual times
		// accumulate injected latency and backoff, so their buckets reach
		// into minutes.
		probeWall:    newHistogram(.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5),
		probeVirtual: newHistogram(.005, .01, .05, .1, .5, 1, 5, 10, 30, 60, 120),
		queueDepth:   queueDepth,
		inFlight:     inFlight,
	}
}

// ObserveEvent folds one probe pipeline event into the metrics: finished
// and degraded probes feed the wall/virtual duration histograms (and the
// degraded counter). Retry events are deliberately NOT counted here —
// retries reach the metrics exactly once, through the RetryObserver
// adapter composed onto the network, so wiring both paths (as the
// server does) cannot double-count.
func (m *Metrics) ObserveEvent(ev probe.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch ev.Kind {
	case probe.EventProbeFinished:
		m.probeWall.observe(ev.Wall.Seconds())
		m.probeVirtual.observe(ev.Virtual.Seconds())
	case probe.EventProbeDegraded:
		m.degraded++
		m.probeWall.observe(ev.Wall.Seconds())
		m.probeVirtual.observe(ev.Virtual.Seconds())
	}
}

// RetryObserver returns a netsim adapter counting masked transient
// attempts per host — installed alongside the study's own observer via
// netsim.CombineRetryObservers, so the event log and the metrics both
// see every retry.
func (m *Metrics) RetryObserver() netsim.RetryObserver {
	return func(host string, attempt int, err error) {
		m.mu.Lock()
		m.retries[host]++
		m.mu.Unlock()
	}
}

func (m *Metrics) addSubmitted() { m.add(&m.submitted) }
func (m *Metrics) addShed()      { m.add(&m.shed) }
func (m *Metrics) addCoalesced() { m.add(&m.coalesced) }
func (m *Metrics) addCacheHit()  { m.add(&m.cacheHits) }
func (m *Metrics) addCacheMiss() { m.add(&m.cacheMisses) }

func (m *Metrics) add(field *int64) {
	m.mu.Lock()
	*field++
	m.mu.Unlock()
}

// jobFinished counts one job reaching a terminal state.
func (m *Metrics) jobFinished(state JobState) {
	m.mu.Lock()
	m.jobs[string(state)]++
	m.mu.Unlock()
}

// Render produces the Prometheus text exposition. Output is stable:
// metric families in fixed order, label values sorted.
func (m *Metrics) Render() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("wideleakd_jobs_submitted_total", "Study submissions accepted into the queue.", m.submitted)
	counter("wideleakd_jobs_shed_total", "Submissions rejected with 429 because the queue was full.", m.shed)
	counter("wideleakd_jobs_coalesced_total", "Submissions attached to an identical in-flight job.", m.coalesced)
	counter("wideleakd_cache_hits_total", "Submissions served from the result cache with no device work.", m.cacheHits)
	counter("wideleakd_cache_misses_total", "Submissions that had to run the study.", m.cacheMisses)
	counter("wideleakd_probe_degraded_total", "Probe runs that exhausted transport retries and degraded.", m.degraded)

	fmt.Fprintf(&b, "# HELP wideleakd_jobs_total Jobs finished, by terminal state.\n# TYPE wideleakd_jobs_total counter\n")
	for _, state := range sortedKeys(m.jobs) {
		fmt.Fprintf(&b, "wideleakd_jobs_total{state=%q} %d\n", state, m.jobs[state])
	}

	fmt.Fprintf(&b, "# HELP wideleakd_netsim_retries_total Masked transient transport faults, by host.\n# TYPE wideleakd_netsim_retries_total counter\n")
	for _, host := range sortedKeys(m.retries) {
		fmt.Fprintf(&b, "wideleakd_netsim_retries_total{host=%q} %d\n", host, m.retries[host])
	}

	fmt.Fprintf(&b, "# HELP wideleakd_queue_depth Jobs waiting in the queue.\n# TYPE wideleakd_queue_depth gauge\nwideleakd_queue_depth %d\n", m.queueDepth())
	fmt.Fprintf(&b, "# HELP wideleakd_jobs_inflight Jobs currently running on workers.\n# TYPE wideleakd_jobs_inflight gauge\nwideleakd_jobs_inflight %d\n", m.inFlight())

	m.probeWall.render(&b, "wideleakd_probe_wall_seconds", "Wall-clock duration of one probe run.")
	m.probeVirtual.render(&b, "wideleakd_probe_virtual_seconds", "Virtual-clock time charged to one probe run (injected latency, backoff).")
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// histogram is a fixed-bucket Prometheus histogram. Callers hold the
// Metrics lock around observe and render.
type histogram struct {
	bounds []float64 // upper bounds, ascending
	counts []uint64  // per-bucket (non-cumulative)
	sum    float64
	count  uint64
}

func newHistogram(bounds ...float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	h.sum += v
	h.count++
	for i, bound := range h.bounds {
		if v <= bound {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++ // +Inf bucket
}

func (h *histogram) render(b *strings.Builder, name, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cumulative := uint64(0)
	for i, bound := range h.bounds {
		cumulative += h.counts[i]
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, trimFloat(bound), cumulative)
	}
	cumulative += h.counts[len(h.bounds)]
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cumulative)
	fmt.Fprintf(b, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(b, "%s_count %d\n", name, h.count)
}

// trimFloat renders a bucket bound the way Prometheus clients do: the
// shortest decimal form, no exponent for these magnitudes.
func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
