// Package serve turns the WideLeak study engine into a service: an HTTP
// JSON API over a bounded job queue and worker pool, with a
// content-addressed result cache, structured per-job event logs
// (polled or streamed as server-sent events), Prometheus-text metrics,
// load shedding, and graceful drain.
//
// API surface (see cmd/wideleakd for the daemon):
//
//	POST   /v1/studies               submit {seed, probes, profiles, faults, concurrency}
//	GET    /v1/studies               list jobs, newest first
//	GET    /v1/studies/{id}          job status
//	DELETE /v1/studies/{id}          cancel a queued or running job
//	GET    /v1/studies/{id}/table    results (?format=txt|csv|json)
//	GET    /v1/studies/{id}/events   structured probe event log (?stream=1 for SSE)
//	GET    /metrics                  Prometheus text exposition
//	GET    /healthz                  liveness (503 while draining)
//
// Identical canonical requests (same seed, probes, profiles and fault
// schedule — wideleak.RunSpec.Key) are served from the cache with zero
// new device work; a full queue sheds load with 429 + Retry-After; and
// Shutdown drains every queued and in-flight job before returning.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/provision"
	"repro/internal/wideleak"
	"repro/internal/wideleak/probe"
)

// Cache-provenance headers. The daemon stamps them so a fleet router or
// load harness can attribute every response to the tier that produced
// it without scraping /metrics:
//
//   - HeaderCacheTier on POST /v1/studies: "hit" (tier-1 result cache,
//     job born done), "coalesced" (attached to an identical live job),
//     or "miss" (a fresh run was queued).
//   - HeaderWorldCache on done-job responses (submit hits, status,
//     table): "hit" when the run that produced the bytes restored a
//     tier-2 world snapshot, "miss" when it built its world cold.
const (
	HeaderCacheTier  = "X-Wideleak-Cache"
	HeaderWorldCache = "X-Wideleak-World-Cache"
)

// Config sizes the server. Zero values select the defaults.
type Config struct {
	// Workers is the study worker pool size (default GOMAXPROCS).
	Workers int
	// QueueSize bounds the backlog of accepted-but-not-running jobs
	// (default 16). Submissions beyond it are shed with HTTP 429.
	QueueSize int
	// CacheSize bounds the LRU result cache (default 64 entries).
	CacheSize int
	// WorldCacheSize bounds the tier-2 world-snapshot cache and the
	// per-seed key-pool index (default 16 entries each). A snapshot is
	// ~50 KB; a pool holds the seed's live RSA keys.
	WorldCacheSize int
	// CellCacheSize bounds the probe-cell LRU (default 4096 outcomes)
	// that makes the result tier cell-aware: a request whose cells are
	// all resident is reassembled with zero device work even when its
	// exact RunSpec was never served before.
	CellCacheSize int
	// BatchWorkers bounds how many batches run concurrently (default
	// Workers). Each batch drives its own chain pool, so this is a slot
	// count, not a thread count.
	BatchWorkers int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 16
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.WorldCacheSize <= 0 {
		c.WorldCacheSize = 16
	}
	if c.CellCacheSize <= 0 {
		c.CellCacheSize = 4096
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = c.Workers
	}
	return c
}

// Server owns the job table, queue, worker pool, cache and metrics.
// Create with New, expose via Handler, stop with Shutdown.
type Server struct {
	cfg     Config
	metrics *Metrics
	cache   *resultCache

	// worlds is tier 2 below the result cache: world identity (seed +
	// fault schedule) → serialized snapshot of the warmed world's RSA
	// provisioning state. pools indexes the per-seed Device RSA key
	// pools shared by every job of a seed, so even a tier-2 miss on a
	// known seed re-mints nothing.
	worlds *worldCache
	pools  *lruCache // seed → *provision.KeyPool

	// cells is the sub-result memoization tier between the result cache
	// and the world cache: completed (world, profile, probe) outcomes by
	// CellKey. It makes the result tier cell-aware — a probe-subset
	// request recombines resident cells instead of re-running — and it is
	// what lets a batch share work across overlapping specs.
	cells *wideleak.CellCache

	mu       sync.Mutex
	jobs     map[string]*Job
	ids      []string        // submission order (for listing)
	active   map[string]*Job // canonical key → live job (coalescing)
	queue    chan *Job
	batches  map[string]*batchJob
	batchIDs []string
	batchSem chan struct{} // bounds concurrently running batches
	draining bool
	seq      int64
	batchSeq int64

	inFlight atomic.Int64
	wg       sync.WaitGroup

	// testHookJobStart, when set, runs at the top of every worker job —
	// tests use it to hold jobs in the running state deterministically.
	testHookJobStart func(*Job)
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    newResultCache(cfg.CacheSize),
		worlds:   newWorldCache(cfg.WorldCacheSize),
		pools:    newLRUCache(cfg.WorldCacheSize),
		cells:    wideleak.NewCellCache(cfg.CellCacheSize),
		jobs:     make(map[string]*Job),
		active:   make(map[string]*Job),
		queue:    make(chan *Job, cfg.QueueSize),
		batches:  make(map[string]*batchJob),
		batchSem: make(chan struct{}, cfg.BatchWorkers),
	}
	s.metrics = newMetrics(
		func() int { return len(s.queue) },
		func() int { return int(s.inFlight.Load()) },
	)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Metrics exposes the server's instrumentation (the /metrics handler
// renders it; tests and embedders may too).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Prewarm kills the cold start for a seed before the first request
// arrives: it pre-mints up to n of the seed's device RSA keys into the
// shared key pool (n <= 0 means all of them) on parallelism workers,
// then banks a world snapshot so the first cold request restores
// instead of building. Keys are byte-identical to lazily minted ones,
// so prewarming is invisible to results. Returns the number of keys
// resident for the seed.
//
// Prewarm is idempotent and safe to run concurrently with traffic; the
// daemon calls it at boot (see wideleakd -prewarm) and logs the warm-up
// duration.
func (s *Server) Prewarm(ctx context.Context, seed string, n, parallelism int) (int, error) {
	spec := wideleak.RunSpec{Seed: seed}
	c, err := spec.Canonicalize()
	if err != nil {
		return 0, err
	}
	ids := wideleak.DeviceStableIDs(nil)
	if n > 0 && n < len(ids) {
		ids = ids[:n]
	}
	pool := s.keyPool(c.Seed)
	if err := pool.Prewarm(ctx, ids, parallelism); err != nil {
		return pool.Size(), err
	}

	// Bank the warmed (fault-free) world identity: a fresh world over
	// the default profiles with the pool attached snapshots every
	// pre-minted key without running any study.
	worldKey, err := spec.WorldKey()
	if err != nil {
		return pool.Size(), err
	}
	world, err := wideleak.NewWorld(c.Seed, nil)
	if err != nil {
		return pool.Size(), err
	}
	if err := world.AttachKeyPool(pool); err != nil {
		return pool.Size(), err
	}
	snap, err := world.Snapshot()
	if err != nil {
		return pool.Size(), err
	}
	s.worlds.put(worldKey, snap)
	return pool.Size(), nil
}

// Shutdown drains the server: no further submissions are accepted (503),
// every queued and in-flight job runs to completion, then the worker
// pool exits. If ctx expires first, in-flight jobs are cancelled and
// Shutdown returns the context error once the workers wind down.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.requestCancel()
		}
		for _, b := range s.batches {
			b.requestCancel()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one queued job end to end.
func (s *Server) runJob(job *Job) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	if hook := s.testHookJobStart; hook != nil {
		hook(job)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if !job.start(cancel) {
		// Cancelled while still queued; nothing to run.
		s.clearActive(job)
		return
	}

	res, err := s.execute(ctx, job)
	s.clearActive(job)
	switch {
	case err == nil:
		s.cache.put(job.Key, res)
		job.finish(JobDone, res, "")
		s.metrics.jobFinished(JobDone)
	case errors.Is(err, context.Canceled):
		job.finish(JobCanceled, nil, err.Error())
		s.metrics.jobFinished(JobCanceled)
	default:
		job.finish(JobFailed, nil, err.Error())
		s.metrics.jobFinished(JobFailed)
	}
}

// keyPool returns the shared Device RSA key pool for a seed, minting
// the pool itself on first use. Every job (and boot prewarm) of one
// seed shares one pool, so 2048-bit keys are generated at most once per
// (seed, device) for the server's lifetime — modulo LRU eviction.
func (s *Server) keyPool(seed string) *provision.KeyPool {
	return s.pools.getOrPut(seed, func() any { return wideleak.NewKeyPool(seed) }).(*provision.KeyPool)
}

// buildStudy materializes a spec's study through the warm tiers: a
// tier-2 world-snapshot hit restores the warmed world in milliseconds;
// a miss builds cold. Either way the seed's shared key pool is attached
// before any provisioning traffic, so whatever keys the tiers did not
// cover mint once per seed, not once per job.
func (s *Server) buildStudy(spec wideleak.RunSpec) (*wideleak.Study, bool, error) {
	worldKey, err := spec.WorldKey()
	if err != nil {
		return nil, false, err
	}
	var study *wideleak.Study
	worldHit := false
	if snap := s.worlds.get(worldKey); snap != nil {
		if study, err = spec.BuildFromSnapshot(snap); err == nil {
			s.metrics.addWorldHit()
			worldHit = true
		} else {
			study = nil // corrupt/mismatched snapshot: fall through to a cold build
		}
	}
	if study == nil {
		s.metrics.addWorldMiss()
		if study, err = spec.Build(); err != nil {
			return nil, false, err
		}
	}
	if err := study.World.AttachKeyPool(s.keyPool(spec.Seed)); err != nil {
		return nil, false, err
	}
	return study, worldHit, nil
}

// builtWorld remembers one study a batch materialized, so the server
// can account its key mints and bank its snapshot after the run.
type builtWorld struct {
	spec     wideleak.RunSpec // seed + faults + union profiles
	study    *wideleak.Study
	worldHit bool
}

// bankWorlds accounts each built study's key generations and banks its
// warmed snapshot: the next run sharing that world identity restores in
// milliseconds instead of re-provisioning. (Re-banking after a tier-2
// hit just refreshes recency — determinism makes the bytes agree.)
func (s *Server) bankWorlds(built []builtWorld) {
	for _, bw := range built {
		s.metrics.addRSAMinted(bw.study.World.Registry.MintCount())
		if worldKey, err := bw.spec.WorldKey(); err == nil {
			if snap, err := bw.study.World.Snapshot(); err == nil {
				s.worlds.put(worldKey, snap)
			}
		}
	}
}

// execute runs the study described by the job's spec under the job's
// context, wiring the probe event stream into the job log, SSE
// subscribers and the metrics, and the network retry stream into the
// per-host retry counters.
//
// The run goes through the matrix scheduler with the server's cell
// cache, which makes the result tier cell-aware: when every cell the
// spec needs is already memoized (a probe subset of an earlier run),
// the table is reassembled with zero device work — no world built, no
// observation executed.
func (s *Server) execute(ctx context.Context, job *Job) (*studyResult, error) {
	var (
		builtMu sync.Mutex
		built   []builtWorld
	)
	wallStart := time.Now()
	batch, err := wideleak.ExecuteBatch(ctx, []wideleak.RunSpec{job.Spec}, wideleak.BatchOptions{
		Concurrency: job.Spec.Concurrency,
		Cache:       s.cells,
		BuildStudy: func(spec wideleak.RunSpec) (*wideleak.Study, error) {
			study, worldHit, err := s.buildStudy(spec)
			if err != nil {
				return nil, err
			}
			study.SetEventSink(func(ev probe.Event) {
				s.metrics.ObserveEvent(job.record(ev))
			})
			// SetEventSink installed the sink's own retry forwarder on the
			// network; compose the per-host metrics adapter alongside it.
			network := study.World.Network
			network.SetRetryObserver(netsim.CombineRetryObservers(network.RetryObserver(), s.metrics.RetryObserver()))
			builtMu.Lock()
			built = append(built, builtWorld{spec: spec, study: study, worldHit: worldHit})
			builtMu.Unlock()
			return study, nil
		},
	})
	if err != nil {
		return nil, err
	}
	table := batch.Tables[0]

	var virtual time.Duration
	worldHit := false
	for _, bw := range built {
		virtual += bw.study.World.Clock().Now()
		worldHit = worldHit || bw.worldHit
	}
	res := &studyResult{
		tables:          make(map[string][]byte, len(wideleak.TableFormats())),
		rows:            len(table.Rows),
		observations:    batch.Stats.Observations,
		legacyPlaybacks: batch.Stats.LegacyPlaybacks,
		wall:            time.Since(wallStart),
		virtual:         virtual,
		worldHit:        worldHit,
		cellsRecombined: batch.Stats.CellsExecuted == 0 && batch.Stats.WorldsBuilt == 0,
	}
	s.metrics.addCellStats(batch.Stats)
	if res.cellsRecombined {
		s.metrics.addCellRecombined()
	}
	for _, format := range wideleak.TableFormats() {
		out, err := table.Encode(format)
		if err != nil {
			return nil, fmt.Errorf("serve: encode %s: %w", format, err)
		}
		res.tables[format] = out
	}
	if res.events, err = job.log.MarshalJSON(); err != nil {
		return nil, fmt.Errorf("serve: encode events: %w", err)
	}
	res.eventCount = job.log.Len()
	s.bankWorlds(built)
	return res, nil
}

// clearActive drops the job from the coalescing index.
func (s *Server) clearActive(job *Job) {
	s.mu.Lock()
	if s.active[job.Key] == job {
		delete(s.active, job.Key)
	}
	s.mu.Unlock()
}

// job looks one job up by ID.
func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// newJobLocked mints and registers a job; the caller holds s.mu.
func (s *Server) newJobLocked(spec wideleak.RunSpec, key string) *Job {
	s.seq++
	id := fmt.Sprintf("s%06d-%.8s", s.seq, key)
	job := newJob(id, key, spec)
	s.jobs[id] = job
	s.ids = append(s.ids, id)
	return job
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/studies", s.handleSubmit)
	mux.HandleFunc("GET /v1/studies", s.handleList)
	mux.HandleFunc("GET /v1/studies/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/studies/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/studies/{id}/table", s.handleTable)
	mux.HandleFunc("GET /v1/studies/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/batches", s.handleBatchSubmit)
	mux.HandleFunc("GET /v1/batches", s.handleBatchList)
	mux.HandleFunc("GET /v1/batches/{id}", s.handleBatchStatus)
	mux.HandleFunc("DELETE /v1/batches/{id}", s.handleBatchCancel)
	mux.HandleFunc("GET /v1/batches/{id}/rows", s.handleBatchRows)
	mux.HandleFunc("GET /v1/batches/{id}/tables/{spec}", s.handleBatchTable)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// submitResponse is the wire shape of POST /v1/studies.
type submitResponse struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Cached    bool     `json:"cached"`
	Coalesced bool     `json:"coalesced,omitempty"`
	StatusURL string   `json:"status_url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec wideleak.RunSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	canonical, err := spec.Canonicalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, err := canonical.Key()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	// Content-addressed cache: an identical canonical request is served
	// without any device work — the job is born done. The provenance
	// headers let a fleet harness attribute the hit to its cache tier.
	if res := s.cache.get(key); res != nil {
		job := s.newJobLocked(canonical, key)
		job.cached = true
		job.state = JobDone
		job.result = res
		close(job.done)
		s.metrics.addCacheHit()
		s.mu.Unlock()
		w.Header().Set(HeaderCacheTier, "hit")
		w.Header().Set(HeaderWorldCache, worldCacheLabel(res.worldHit))
		writeJSON(w, http.StatusOK, submitResponse{
			ID: job.ID, State: JobDone, Cached: true,
			StatusURL: "/v1/studies/" + job.ID,
		})
		return
	}

	// Coalesce with an identical queued/running job instead of doing the
	// same device work twice.
	if live := s.active[key]; live != nil {
		state := live.State()
		s.metrics.addCoalesced()
		s.mu.Unlock()
		w.Header().Set(HeaderCacheTier, "coalesced")
		writeJSON(w, http.StatusAccepted, submitResponse{
			ID: live.ID, State: state, Coalesced: true,
			StatusURL: "/v1/studies/" + live.ID,
		})
		return
	}

	job := s.newJobLocked(canonical, key)
	select {
	case s.queue <- job:
		s.active[key] = job
		s.metrics.addSubmitted()
		s.metrics.addCacheMiss()
		s.mu.Unlock()
		w.Header().Set(HeaderCacheTier, "miss")
		w.Header().Set("Location", "/v1/studies/"+job.ID)
		writeJSON(w, http.StatusAccepted, submitResponse{
			ID: job.ID, State: JobQueued,
			StatusURL: "/v1/studies/" + job.ID,
		})
	default:
		// Load shedding: the queue is full. Unregister the stillborn job
		// and tell the client when to come back.
		delete(s.jobs, job.ID)
		s.ids = s.ids[:len(s.ids)-1]
		s.metrics.addShed()
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue is full")
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]jobStatus, 0, len(s.ids))
	for i := len(s.ids) - 1; i >= 0; i-- {
		statuses = append(statuses, s.jobs[s.ids[i]].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job := s.job(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "no such study")
		return
	}
	setProvenanceHeaders(w, job)
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.job(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "no such study")
		return
	}
	if !job.requestCancel() {
		writeError(w, http.StatusConflict, fmt.Sprintf("study is already %s", job.State()))
		return
	}
	s.clearActive(job)
	writeJSON(w, http.StatusAccepted, map[string]any{"id": job.ID, "state": job.State()})
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	job := s.job(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "no such study")
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" || format == "text" {
		format = "txt"
	}
	res := job.snapshotResult()
	if res == nil {
		writeError(w, http.StatusConflict, fmt.Sprintf("study is %s, not done", job.State()))
		return
	}
	setProvenanceHeaders(w, job)
	out, ok := res.tables[format]
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (supported: txt, csv, json)", format))
		return
	}
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Write(out)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job := s.job(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "no such study")
		return
	}
	if r.URL.Query().Get("stream") != "" {
		s.streamEvents(w, r, job)
		return
	}
	// A done job serves its result's log verbatim (for cache hits, the
	// log of the run that produced the cached table); a live job serves
	// whatever has been recorded so far.
	if res := job.snapshotResult(); res != nil {
		w.Header().Set("Content-Type", "application/json")
		w.Write(res.events)
		return
	}
	out, err := job.log.MarshalJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

// streamEvents serves the event log as server-sent events: first the
// backlog, then live events until the job reaches a terminal state (or
// the client goes away). Each event is `event: <kind>` + JSON data; a
// final `event: done` carries the terminal job state.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, job *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev probe.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	backlog, live := job.subscribe()
	for _, ev := range backlog {
		if !writeEvent(ev) {
			return
		}
	}
	if live != nil {
		for {
			select {
			case ev, ok := <-live:
				if !ok {
					live = nil
				} else if !writeEvent(ev) {
					return
				}
			case <-r.Context().Done():
				return
			}
			if live == nil {
				break
			}
		}
	}
	fmt.Fprintf(w, "event: done\ndata: {\"state\":%q}\n\n", job.State())
	flusher.Flush()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.metrics.Render())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// setProvenanceHeaders stamps a done job's cache attribution onto the
// response; live jobs get no provenance (it is unknown until they run).
func setProvenanceHeaders(w http.ResponseWriter, job *Job) {
	cached, worldHit, ok := job.provenance()
	if !ok {
		return
	}
	if cached {
		w.Header().Set(HeaderCacheTier, "hit")
	} else {
		w.Header().Set(HeaderCacheTier, "miss")
	}
	w.Header().Set(HeaderWorldCache, worldCacheLabel(worldHit))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
