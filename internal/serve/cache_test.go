package serve

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"repro/internal/wideleak"
)

// TestServer_CacheIdenticalRequests is the cache-correctness acceptance
// test: two identical canonical requests return byte-identical tables,
// and the second does zero device work — no new observations, no new
// events, served straight from the result cache.
func TestServer_CacheIdenticalRequests(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2, QueueSize: 4})

	cold := submit(t, ts, smallSpec(), http.StatusAccepted)
	coldStatus := waitTerminal(t, ts, cold.ID)
	if coldStatus.State != JobDone {
		t.Fatalf("cold run state = %s (err %q)", coldStatus.State, coldStatus.Error)
	}
	if coldStatus.Observations == 0 {
		t.Fatal("cold run did no observations; the cache test would be vacuous")
	}

	// An equivalent spelling of the same canonical request: probe list
	// spelled with its dependency dupes, profile case-folded, different
	// concurrency. Must hit the cache: 200, born done.
	equivalent := wideleak.RunSpec{
		Seed:        smallSpec().Seed,
		Profiles:    []string{"showtime"},
		Probes:      []string{"q2", "q2"},
		Concurrency: 3,
	}
	warm := submit(t, ts, equivalent, http.StatusOK)
	if !warm.Cached || warm.State != JobDone {
		t.Fatalf("second submission not served from cache: %+v", warm)
	}
	if warm.ID == cold.ID {
		t.Fatal("cache hit reused the original job ID")
	}

	warmStatus := getStatus(t, ts, warm.ID)
	if warmStatus.Observations != 0 || warmStatus.LegacyPlaybacks != 0 {
		t.Errorf("cached job reports device work: observations = %d, playbacks = %d",
			warmStatus.Observations, warmStatus.LegacyPlaybacks)
	}
	if warmStatus.Events != coldStatus.Events {
		t.Errorf("cached job events = %d, want the original run's %d", warmStatus.Events, coldStatus.Events)
	}

	for _, format := range wideleak.TableFormats() {
		coldTable := fetchTable(t, ts, cold.ID, format)
		warmTable := fetchTable(t, ts, warm.ID, format)
		if !bytes.Equal(coldTable, warmTable) {
			t.Errorf("format %s: cached table differs from cold table", format)
		}
	}

	if got := srv.cache.len(); got != 1 {
		t.Errorf("cache holds %d entries, want 1", got)
	}
	metrics := metricsText(t, ts)
	for _, want := range []string{
		"wideleakd_cache_hits_total 1",
		"wideleakd_cache_misses_total 1",
		"wideleakd_jobs_submitted_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestServer_FaultSeedMissesCache: the fault schedule is part of the
// content address — same rate under a different seed is a different run.
func TestServer_FaultSeedMissesCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueSize: 4})

	withFaults := func(seed string) wideleak.RunSpec {
		spec := smallSpec()
		spec.Faults = &wideleak.RunFaults{Rate: 0.2, Seed: seed}
		return spec
	}

	first := submit(t, ts, withFaults("a"), http.StatusAccepted)
	if st := waitTerminal(t, ts, first.ID); st.State != JobDone {
		t.Fatalf("first run state = %s (err %q)", st.State, st.Error)
	}

	// Same rate, different schedule seed: a cold run, not a cache hit.
	second := submit(t, ts, withFaults("b"), http.StatusAccepted)
	if second.Cached {
		t.Fatal("different fault seed served from cache")
	}
	if st := waitTerminal(t, ts, second.ID); st.State != JobDone {
		t.Fatalf("second run state = %s (err %q)", st.State, st.Error)
	}

	// Re-submitting seed "a" verbatim does hit.
	third := submit(t, ts, withFaults("a"), http.StatusOK)
	if !third.Cached {
		t.Fatal("identical fault spec missed the cache")
	}
	if metrics := metricsText(t, ts); !strings.Contains(metrics, "wideleakd_cache_misses_total 2") {
		t.Error("expected exactly two cold runs")
	}
}

// TestResultCache_LRU pins the eviction policy without any HTTP.
func TestResultCache_LRU(t *testing.T) {
	c := newResultCache(2)
	r1, r2, r3 := &studyResult{rows: 1}, &studyResult{rows: 2}, &studyResult{rows: 3}

	c.put("k1", r1)
	c.put("k2", r2)
	if c.get("k1") != r1 { // promotes k1; k2 becomes the eviction victim
		t.Fatal("k1 missing")
	}
	c.put("k3", r3)
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
	if c.get("k2") != nil {
		t.Error("k2 survived eviction; LRU order ignored")
	}
	if c.get("k1") != r1 || c.get("k3") != r3 {
		t.Error("recently used entries evicted")
	}

	// Re-putting an existing key refreshes recency instead of growing.
	c.put("k1", r1)
	if c.len() != 2 {
		t.Errorf("re-put grew the cache to %d", c.len())
	}
	c.put("k4", &studyResult{rows: 4})
	if c.get("k3") != nil {
		t.Error("k3 should have been the LRU victim after k1 was refreshed")
	}
}
