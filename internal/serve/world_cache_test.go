package serve

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ott"
	"repro/internal/wideleak"
)

// counterValue scrapes one counter out of the Prometheus text rendering.
func counterValue(t *testing.T, metrics, name string) string {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("counter %s not rendered", name)
	return ""
}

// TestServer_WorldCacheTier pins the tier-2 contract: a request that
// misses the result cache (different probe subset) but shares a warmed
// world (same seed, same faults) restores the snapshot and provisions
// ZERO new device keys.
func TestServer_WorldCacheTier(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	// Cold run: all probes over one app. Builds the world, mints its keys,
	// banks the snapshot.
	full := wideleak.RunSpec{Seed: "world-tier", Profiles: []string{"Showtime"}}
	sub := submit(t, ts, full, 202)
	if st := waitTerminal(t, ts, sub.ID); st.State != JobDone {
		t.Fatalf("cold job ended %s: %s", st.State, st.Error)
	}
	coldMints := srv.metrics.RSAMinted()
	if coldMints == 0 {
		t.Fatal("cold run minted no keys — tier-2 assertion would be vacuous")
	}
	m := metricsText(t, ts)
	if got := counterValue(t, m, "wideleakd_world_cache_misses_total"); got != "1" {
		t.Errorf("world cache misses = %s, want 1", got)
	}
	if got := counterValue(t, m, "wideleakd_world_cache_hits_total"); got != "0" {
		t.Errorf("world cache hits = %s, want 0", got)
	}

	// Warm run: a new probe — new result key, same world key. q5 is
	// opt-in, so the cold run never primed its cells and the job cannot
	// recombine above tier 2: it must restore the snapshot and
	// re-provision nothing.
	subset := wideleak.RunSpec{Seed: "world-tier", Profiles: []string{"Showtime"}, Probes: []string{"q5"}}
	sub2 := submit(t, ts, subset, 202)
	if st := waitTerminal(t, ts, sub2.ID); st.State != JobDone {
		t.Fatalf("warm job ended %s: %s", st.State, st.Error)
	}
	if got := srv.metrics.RSAMinted(); got != coldMints {
		t.Errorf("warm run minted %d new keys, want 0", got-coldMints)
	}
	m = metricsText(t, ts)
	if got := counterValue(t, m, "wideleakd_world_cache_hits_total"); got != "1" {
		t.Errorf("world cache hits = %s, want 1", got)
	}
	if got := counterValue(t, m, "wideleakd_world_cache_misses_total"); got != "1" {
		t.Errorf("world cache misses = %s, want 1 (unchanged)", got)
	}
}

// TestServer_WorldCacheFaultIsolation: a faulted request must NOT reuse
// the fault-free world entry (different world key), but repeats of the
// same fault schedule share theirs.
func TestServer_WorldCacheFaultIsolation(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	clean := smallSpec()
	faulted := smallSpec()
	faulted.Faults = &wideleak.RunFaults{Rate: 0.2}

	if st := waitTerminal(t, ts, submit(t, ts, clean, 202).ID); st.State != JobDone {
		t.Fatalf("clean job: %s", st.Error)
	}
	if st := waitTerminal(t, ts, submit(t, ts, faulted, 202).ID); st.State != JobDone {
		t.Fatalf("faulted job: %s", st.Error)
	}
	m := metricsText(t, ts)
	if got := counterValue(t, m, "wideleakd_world_cache_misses_total"); got != "2" {
		t.Errorf("world cache misses = %s, want 2 (fault schedule is world identity)", got)
	}
	// The pool is per-seed, so the faulted run still found every key
	// resident: only the first run's devices were minted. q5 keeps the
	// request below the cell tier (opt-in, so never primed above).
	faulted.Probes = []string{"q5"}
	if st := waitTerminal(t, ts, submit(t, ts, faulted, 202).ID); st.State != JobDone {
		t.Fatalf("faulted subset job: %s", st.Error)
	}
	m = metricsText(t, ts)
	if got := counterValue(t, m, "wideleakd_world_cache_hits_total"); got != "1" {
		t.Errorf("world cache hits = %s, want 1 (faulted world reused for its own schedule)", got)
	}
	_ = srv
}

// TestServer_Prewarm: boot-time warm-up mints the requested keys into
// the per-seed pool and banks a world snapshot, so the FIRST request for
// that seed is already a tier-2 hit with zero key generation.
func TestServer_Prewarm(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	first := ott.Profiles()[0].Name
	resident, err := srv.Prewarm(context.Background(), "prewarm-test", 3, 2)
	if err != nil {
		t.Fatalf("Prewarm: %v", err)
	}
	if resident != 3 {
		t.Fatalf("Prewarm resident = %d, want 3", resident)
	}

	// The first three stable IDs are the first profile's devices, so a
	// run over that profile needs no generation at all.
	spec := wideleak.RunSpec{Seed: "prewarm-test", Profiles: []string{first}, Probes: []string{"q2"}}
	if st := waitTerminal(t, ts, submit(t, ts, spec, 202).ID); st.State != JobDone {
		t.Fatalf("prewarmed job: %s", st.Error)
	}
	if got := srv.metrics.RSAMinted(); got != 0 {
		t.Errorf("prewarmed run minted %d keys, want 0", got)
	}
	m := metricsText(t, ts)
	if got := counterValue(t, m, "wideleakd_world_cache_hits_total"); got != "1" {
		t.Errorf("world cache hits = %s, want 1 (prewarm banked the snapshot)", got)
	}
	if got := counterValue(t, m, "wideleakd_rsa_keys_minted_total"); got != "0" {
		t.Errorf("rsa minted counter = %s, want 0", got)
	}

	// Prewarm is idempotent.
	if resident, err = srv.Prewarm(context.Background(), "prewarm-test", 3, 2); err != nil || resident != 3 {
		t.Fatalf("second Prewarm = (%d, %v), want (3, nil)", resident, err)
	}
}
