package serve

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/wideleak/probe"
)

func staticGauge(v int) func() int { return func() int { return v } }

// TestMetrics_Render pins the exposition format: counters, labeled
// families with sorted labels, live-sampled gauges, and histograms with
// cumulative buckets.
func TestMetrics_Render(t *testing.T) {
	m := newMetrics(staticGauge(3), staticGauge(2))
	m.addSubmitted()
	m.addSubmitted()
	m.addShed()
	m.addCacheHit()
	m.addCacheMiss()
	m.addCoalesced()
	m.jobFinished(JobDone)
	m.jobFinished(JobDone)
	m.jobFinished(JobFailed)

	observe := m.RetryObserver()
	observe("cdn.example", 1, errors.New("transient"))
	observe("cdn.example", 2, errors.New("transient"))
	observe("api.example", 1, errors.New("transient"))

	m.ObserveEvent(probe.Event{Kind: probe.EventProbeFinished, Wall: 2 * time.Millisecond, Virtual: 40 * time.Millisecond})
	m.ObserveEvent(probe.Event{Kind: probe.EventProbeDegraded, Wall: 80 * time.Millisecond, Virtual: 90 * time.Second})

	out := m.Render()
	for _, want := range []string{
		"wideleakd_jobs_submitted_total 2",
		"wideleakd_jobs_shed_total 1",
		"wideleakd_jobs_coalesced_total 1",
		"wideleakd_cache_hits_total 1",
		"wideleakd_cache_misses_total 1",
		"wideleakd_probe_degraded_total 1",
		`wideleakd_jobs_total{state="done"} 2`,
		`wideleakd_jobs_total{state="failed"} 1`,
		`wideleakd_netsim_retries_total{host="api.example"} 1`,
		`wideleakd_netsim_retries_total{host="cdn.example"} 2`,
		"wideleakd_queue_depth 3",
		"wideleakd_jobs_inflight 2",
		"wideleakd_probe_wall_seconds_count 2",
		"wideleakd_probe_virtual_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// Labels render sorted, so api.example precedes cdn.example.
	if strings.Index(out, `host="api.example"`) > strings.Index(out, `host="cdn.example"`) {
		t.Error("retry hosts not sorted")
	}
	// Retry events reaching the probe sink must NOT double-count: only
	// the RetryObserver path feeds the retry counters.
	m.ObserveEvent(probe.Event{Kind: probe.EventRetry, Host: "cdn.example"})
	if out := m.Render(); !strings.Contains(out, `wideleakd_netsim_retries_total{host="cdn.example"} 2`) {
		t.Error("EventRetry through the sink changed the retry counter")
	}
}

// TestHistogram pins bucket assignment, the cumulative rendering, and
// the +Inf overflow bucket.
func TestHistogram(t *testing.T) {
	h := newHistogram(0.01, 0.1, 1)
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 99} {
		h.observe(v)
	}
	if h.count != 5 {
		t.Fatalf("count = %d", h.count)
	}

	var b strings.Builder
	h.render(&b, "x_seconds", "test histogram")
	out := b.String()
	for _, want := range []string{
		`x_seconds_bucket{le="0.01"} 1`,
		`x_seconds_bucket{le="0.1"} 3`,
		`x_seconds_bucket{le="1"} 4`,
		`x_seconds_bucket{le="+Inf"} 5`,
		"x_seconds_count 5",
		"x_seconds_sum 99.605",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram missing %q in:\n%s", want, out)
		}
	}
}

// TestTrimFloat: bucket bounds render in short decimal form.
func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{0.0005: "0.0005", 0.5: "0.5", 1: "1", 2.5: "2.5", 120: "120"}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
