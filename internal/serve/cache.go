package serve

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed result store: canonical request
// key → fully encoded study result. Identical canonical requests are
// served from here without re-running any device work. Bounded LRU: when
// the cap is exceeded, the least recently served entry is dropped.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	res *studyResult
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached result for a key (nil on miss) and marks it
// most recently used.
func (c *resultCache) get(key string) *studyResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res
}

// put stores a result under its content address, evicting the least
// recently used entry when over capacity. Storing an existing key
// refreshes its recency (the bytes are identical by construction).
func (c *resultCache) put(key string, res *studyResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the resident entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
