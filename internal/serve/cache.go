package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded string-keyed LRU — the shared mechanism behind
// the server's cache tiers (encoded results, world snapshots, per-seed
// key pools). When the cap is exceeded, the least recently used entry is
// dropped.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	val any
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached value for a key (nil on miss) and marks it
// most recently used.
func (c *lruCache) get(key string) any {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val
}

// put stores a value, evicting the least recently used entry when over
// capacity. Storing an existing key refreshes its value and recency.
func (c *lruCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the resident entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// getOrPut returns the value for key, storing (and returning) the one
// minted by mk on a miss. mk runs under the cache lock — keep it cheap.
func (c *lruCache) getOrPut(key string, mk func() any) any {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).val
	}
	val := mk()
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	return val
}

// resultCache is tier 1: canonical request key (wideleak.RunSpec.Key) →
// fully encoded study result. Identical canonical requests are served
// from here without re-running any device work.
type resultCache struct{ lru *lruCache }

func newResultCache(capacity int) *resultCache {
	return &resultCache{lru: newLRUCache(capacity)}
}

func (c *resultCache) get(key string) *studyResult {
	res, _ := c.lru.get(key).(*studyResult)
	return res
}

func (c *resultCache) put(key string, res *studyResult) { c.lru.put(key, res) }

func (c *resultCache) len() int { return c.lru.len() }

// worldCache is tier 2: world identity (wideleak.RunSpec.WorldKey —
// seed + fault schedule) → serialized world snapshot. A request that
// misses tier 1 but shares a warmed world (same seed and faults,
// different probe subset or profile list) restores ~seconds of RSA
// provisioning state in milliseconds instead of rebuilding it.
type worldCache struct{ lru *lruCache }

func newWorldCache(capacity int) *worldCache {
	return &worldCache{lru: newLRUCache(capacity)}
}

func (c *worldCache) get(key string) []byte {
	snap, _ := c.lru.get(key).([]byte)
	return snap
}

func (c *worldCache) put(key string, snapshot []byte) { c.lru.put(key, snapshot) }

func (c *worldCache) len() int { return c.lru.len() }
