package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/wideleak"
)

// submitBatch POSTs a batch request and decodes the response.
func submitBatch(t *testing.T, ts *httptest.Server, specs []wideleak.RunSpec, wantStatus int) submitBatchResponse {
	t.Helper()
	body, err := json.Marshal(map[string]any{"specs": specs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var raw bytes.Buffer
		raw.ReadFrom(resp.Body)
		t.Fatalf("batch submit status = %d, want %d (body: %s)", resp.StatusCode, wantStatus, raw.String())
	}
	var sub submitBatchResponse
	if wantStatus < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
	}
	return sub
}

// getBatchStatus fetches one batch's status document.
func getBatchStatus(t *testing.T, ts *httptest.Server, id string) batchStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/batches/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %s = %d", id, resp.StatusCode)
	}
	var st batchStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitBatchTerminal polls a batch until it leaves the live states.
func waitBatchTerminal(t *testing.T, ts *httptest.Server, id string) batchStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := getBatchStatus(t, ts, id)
		if st.State.terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("batch %s never finished", id)
	return batchStatus{}
}

// fetchBatchTable downloads one spec's table from a finished batch.
func fetchBatchTable(t *testing.T, ts *httptest.Server, id string, spec int, format string) []byte {
	t.Helper()
	url := fmt.Sprintf("%s/v1/batches/%s/tables/%d", ts.URL, id, spec)
	if format != "" {
		url += "?format=" + format
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch table %s/%d format=%q = %d (body: %s)", id, spec, format, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

// freshEncoded runs one spec from scratch (no server, no caches) and
// encodes its table — the ground truth batch responses must match.
func freshEncoded(t *testing.T, spec wideleak.RunSpec, format string) []byte {
	t.Helper()
	c, err := spec.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	study, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	table, err := study.BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	out, err := table.Encode(format)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServer_BatchEndToEnd: three overlapping specs submitted as one
// batch share a single world and their overlapping cells, yet every
// per-spec table is byte-identical to a fresh standalone run.
func TestServer_BatchEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	specs := []wideleak.RunSpec{
		{Seed: "batch-e2e", Profiles: []string{"Showtime", "Netflix"}},
		{Seed: "batch-e2e", Profiles: []string{"Showtime", "Netflix"}, Probes: []string{"q2", "q3"}},
		{Seed: "batch-e2e", Profiles: []string{"Showtime"}, Probes: []string{"q1"}},
	}
	sub := submitBatch(t, ts, specs, 202)
	if sub.Specs != 3 {
		t.Fatalf("submit specs = %d, want 3", sub.Specs)
	}
	st := waitBatchTerminal(t, ts, sub.ID)
	if st.State != JobDone {
		t.Fatalf("batch ended %s: %s", st.State, st.Error)
	}
	if st.RowsDone != 5 {
		t.Errorf("rows done = %d, want 5 (2+2+1)", st.RowsDone)
	}
	if len(st.TableURLs) != 3 {
		t.Fatalf("table urls = %d, want 3", len(st.TableURLs))
	}

	// Sharing actually happened: one world for all three specs, and the
	// subset specs' cells were planned once, not per spec.
	if st.Stats.WorldsBuilt != 1 {
		t.Errorf("worlds built = %d, want 1", st.Stats.WorldsBuilt)
	}
	if st.Stats.CellsPlanned >= st.Stats.CellsNeeded {
		t.Errorf("cells planned = %d, needed = %d: no dedup", st.Stats.CellsPlanned, st.Stats.CellsNeeded)
	}

	// Byte identity against fresh standalone runs, every format.
	for i, spec := range specs {
		for _, format := range wideleak.TableFormats() {
			got := fetchBatchTable(t, ts, sub.ID, i, format)
			want := freshEncoded(t, spec, format)
			if !bytes.Equal(got, want) {
				t.Errorf("spec %d format %s: batch table differs from fresh run\ngot:\n%s\nwant:\n%s", i, format, got, want)
			}
		}
	}

	// The rows endpoint has every (spec, app) exactly once, Seq 1..5.
	resp, err := http.Get(ts.URL + "/v1/batches/" + sub.ID + "/rows")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []batchRow
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	seen := make(map[string]bool)
	for i, row := range rows {
		if row.Seq != int64(i+1) {
			t.Errorf("row %d Seq = %d, want %d", i, row.Seq, i+1)
		}
		key := fmt.Sprintf("%d/%s", row.Spec, row.App)
		if seen[key] {
			t.Errorf("row %s delivered twice", key)
		}
		seen[key] = true
		if row.Err == "" && len(row.Cells) == 0 {
			t.Errorf("row %s has neither cells nor an error", key)
		}
	}

	// The batch shows up in the listing.
	listResp, err := http.Get(ts.URL + "/v1/batches")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var listed []batchStatus
	if err := json.NewDecoder(listResp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0].ID != sub.ID {
		t.Errorf("batch list = %+v, want the one batch", listed)
	}
}

// TestServer_BatchRowsSSE pins the streaming contract: a client that
// connects while the batch is live sees every row exactly once as an
// `event: row` frame, Seq strictly ascending from 1 with no gaps
// (backlog replay and live delivery never duplicate or reorder), then
// a final `event: done` with the terminal state. Run under -race this
// also exercises appendRow/subscribeRows interleaving.
func TestServer_BatchRowsSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	specs := []wideleak.RunSpec{
		{Seed: "batch-sse", Profiles: []string{"Showtime", "Netflix"}, Probes: []string{"q2"}},
		{Seed: "batch-sse", Profiles: []string{"Showtime", "Netflix"}, Probes: []string{"q2", "q3"}},
	}
	sub := submitBatch(t, ts, specs, 202)

	// Connect immediately — typically mid-run, so the stream crosses the
	// backlog→live handoff.
	resp, err := http.Get(ts.URL + "/v1/batches/" + sub.ID + "/rows?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	var (
		rows      []batchRow
		doneState string
		event     string
	)
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "row":
				var row batchRow
				if err := json.Unmarshal([]byte(data), &row); err != nil {
					t.Fatalf("bad row frame %q: %v", data, err)
				}
				rows = append(rows, row)
			case "done":
				var fin struct {
					State string `json:"state"`
				}
				if err := json.Unmarshal([]byte(data), &fin); err != nil {
					t.Fatalf("bad done frame %q: %v", data, err)
				}
				doneState = fin.State
			}
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}

	if doneState != string(JobDone) {
		t.Errorf("done state = %q, want %q", doneState, JobDone)
	}
	if len(rows) != 4 {
		t.Fatalf("streamed %d rows, want 4", len(rows))
	}
	seen := make(map[string]bool)
	for i, row := range rows {
		if row.Seq != int64(i+1) {
			t.Errorf("frame %d Seq = %d, want %d (ordering/duplication bug)", i, row.Seq, i+1)
		}
		key := fmt.Sprintf("%d/%s", row.Spec, row.App)
		if seen[key] {
			t.Errorf("row %s streamed twice", key)
		}
		seen[key] = true
	}
	for spec := range specs {
		for _, app := range []string{"Showtime", "Netflix"} {
			if !seen[fmt.Sprintf("%d/%s", spec, app)] {
				t.Errorf("row %d/%s never streamed", spec, app)
			}
		}
	}
}

// TestServer_CellRecombination: after a full run primes the cell tier,
// a probe-subset job is reassembled purely from memoized cells — zero
// observations, zero new keys, no world built or restored — and still
// serves bytes identical to a fresh run.
func TestServer_CellRecombination(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	full := wideleak.RunSpec{Seed: "cell-tier", Profiles: []string{"Showtime"}}
	if st := waitTerminal(t, ts, submit(t, ts, full, 202).ID); st.State != JobDone {
		t.Fatalf("full job ended %s: %s", st.State, st.Error)
	}
	minted := srv.metrics.RSAMinted()

	subset := wideleak.RunSpec{Seed: "cell-tier", Profiles: []string{"Showtime"}, Probes: []string{"q2", "q3"}}
	st := waitTerminal(t, ts, submit(t, ts, subset, 202).ID)
	if st.State != JobDone {
		t.Fatalf("subset job ended %s: %s", st.State, st.Error)
	}
	if st.CellCache != "hit" {
		t.Errorf("cell_cache = %q, want \"hit\"", st.CellCache)
	}
	if st.Observations != 0 {
		t.Errorf("subset ran %d observations, want 0 (pure recombination)", st.Observations)
	}
	if got := srv.metrics.RSAMinted(); got != minted {
		t.Errorf("subset minted %d new keys, want 0", got-minted)
	}

	m := metricsText(t, ts)
	if got := counterValue(t, m, "wideleakd_jobs_cell_recombined_total"); got != "1" {
		t.Errorf("cell recombined jobs = %s, want 1", got)
	}
	if got := counterValue(t, m, "wideleakd_cells_executed_total"); got == "0" {
		t.Error("cells executed = 0: the full run never populated the counter")
	}

	got := fetchTable(t, ts, st.ID, "json")
	want := freshEncoded(t, subset, "json")
	if !bytes.Equal(got, want) {
		t.Errorf("recombined table differs from fresh run\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestServer_BatchValidation covers the unhappy paths.
func TestServer_BatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	// Empty batch and malformed specs are rejected up front.
	submitBatch(t, ts, nil, 400)
	submitBatch(t, ts, []wideleak.RunSpec{{Probes: []string{"nope"}}}, 400)

	// Unknown batch IDs 404 everywhere.
	for _, path := range []string{"/v1/batches/b999999", "/v1/batches/b999999/rows", "/v1/batches/b999999/tables/0"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}

	// Tables of a live batch conflict; out-of-range spec indexes 404.
	sub := submitBatch(t, ts, []wideleak.RunSpec{smallSpec()}, 202)
	if st := waitBatchTerminal(t, ts, sub.ID); st.State != JobDone {
		t.Fatalf("batch ended %s: %s", st.State, st.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/batches/" + sub.ID + "/tables/7")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("out-of-range table = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/batches/" + sub.ID + "/tables/0?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format = %d, want 400", resp.StatusCode)
	}
}

// TestServer_BatchDeviceAxis pins the device axis through the service
// layer: specs carrying a device set execute over exactly those cells,
// the status document reports the per-profile cell counts, the metrics
// endpoint exposes them as wideleakd_device_cells_total, device-set
// order never splits the cache, and unknown profiles are rejected up
// front.
func TestServer_BatchDeviceAxis(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	// Unknown device profiles fail validation at submit time.
	submitBatch(t, ts, []wideleak.RunSpec{
		{Seed: "device-axis", Profiles: []string{"Showtime"}, Devices: []string{"warpphone"}},
	}, 400)

	// Two specs over the same non-default device pair, submitted in
	// different orders: canonicalization must collapse them onto one
	// world, and a third over the default trio builds its own.
	specs := []wideleak.RunSpec{
		{Seed: "device-axis", Profiles: []string{"Showtime"}, Probes: []string{"q2"}, Devices: []string{"l3", "pixel"}},
		{Seed: "device-axis", Profiles: []string{"Showtime"}, Probes: []string{"q2"}, Devices: []string{"pixel", "l3"}},
		{Seed: "device-axis", Profiles: []string{"Showtime"}, Probes: []string{"q2"}},
	}
	sub := submitBatch(t, ts, specs, 202)
	st := waitBatchTerminal(t, ts, sub.ID)
	if st.State != JobDone {
		t.Fatalf("batch ended %s: %s", st.State, st.Error)
	}
	if st.Stats.WorldsBuilt != 2 {
		t.Errorf("worlds built = %d, want 2 (device pair + default trio)", st.Stats.WorldsBuilt)
	}

	// The status document carries the device-cell dimension: each built
	// world manufactured one cell per (device, app).
	want := map[string]int{"pixel": 2, "l3": 2, "nexus5": 1}
	for profile, n := range want {
		if got := st.Stats.DeviceCells[profile]; got != n {
			t.Errorf("device cells[%s] = %d, want %d", profile, got, n)
		}
	}
	if len(st.Stats.DeviceCells) != len(want) {
		t.Errorf("device cells = %v, want exactly %v", st.Stats.DeviceCells, want)
	}

	// The same counts reach /metrics, labeled per profile.
	m := metricsText(t, ts)
	for profile, n := range want {
		line := fmt.Sprintf("wideleakd_device_cells_total{profile=%q} %d", profile, n)
		if !strings.Contains(m, line) {
			t.Errorf("metrics missing %q", line)
		}
	}

	// Device-set provenance: the canonical specs echo registry order.
	for i := 0; i < 2; i++ {
		if got := fmt.Sprint(st.Specs[i].Devices); got != "[pixel l3]" {
			t.Errorf("spec %d canonical devices = %s, want [pixel l3]", i, got)
		}
	}

	// Byte identity against a fresh standalone run of the device spec.
	got := fetchBatchTable(t, ts, sub.ID, 0, "txt")
	if !bytes.Equal(got, freshEncoded(t, specs[0], "txt")) {
		t.Errorf("device-axis batch table differs from fresh run:\n%s", got)
	}
}
