package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/wideleak"
	"repro/internal/wideleak/probe"
)

// Batch API: POST /v1/batches plans a slice of RunSpecs as one
// deduplicated cell matrix and executes it through the shared cell
// cache, so overlapping specs (same world, overlapping probes or
// profiles) pay for their union once instead of N full runs. Rows
// stream out as cells complete:
//
//	POST   /v1/batches                    submit {specs: [RunSpec, ...], concurrency}
//	GET    /v1/batches                    list batches, newest first
//	GET    /v1/batches/{id}               batch status + sharing stats
//	DELETE /v1/batches/{id}               cancel a running batch
//	GET    /v1/batches/{id}/rows          completed rows (?stream=1 for SSE)
//	GET    /v1/batches/{id}/tables/{spec} one spec's table (?format=txt|csv|json)

// batchRow is the wire shape of one completed row: which spec and app
// it belongs to, a monotonically increasing per-batch sequence stamp,
// and the rendered cells (or the transport annotation).
type batchRow struct {
	Seq    int64    `json:"seq"`
	Spec   int      `json:"spec"`
	App    string   `json:"app"`
	Err    string   `json:"error,omitempty"`
	Probes []string `json:"probes,omitempty"`
	Cells  []string `json:"cells,omitempty"`
}

// batchJob is one batch submission: the canonical specs, lifecycle
// state, the row backlog + live subscriptions, and — once done — the
// per-spec encoded tables and sharing stats.
type batchJob struct {
	ID    string
	specs []wideleak.RunSpec

	mu        sync.Mutex
	state     JobState
	errText   string
	tables    []map[string][]byte // per spec: format → bytes
	stats     wideleak.BatchStats
	rows      []batchRow
	subs      []chan batchRow
	done      chan struct{}
	cancel    context.CancelFunc
	cancelled bool

	concurrency int
	submitted   time.Time
	finished    time.Time
	wall        time.Duration
}

func newBatchJob(id string, specs []wideleak.RunSpec, concurrency int) *batchJob {
	return &batchJob{
		ID:          id,
		specs:       specs,
		state:       JobQueued,
		done:        make(chan struct{}),
		concurrency: concurrency,
		submitted:   time.Now(),
	}
}

// State returns the batch's lifecycle phase.
func (b *batchJob) State() JobState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// start transitions queued → running; false when already cancelled.
func (b *batchJob) start(cancel context.CancelFunc) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != JobQueued {
		return false
	}
	b.state = JobRunning
	b.cancel = cancel
	if b.cancelled {
		cancel()
	}
	return true
}

// finish publishes the terminal state and closes every row stream.
func (b *batchJob) finish(state JobState, errText string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state.terminal() {
		return
	}
	b.state = state
	b.errText = errText
	b.finished = time.Now()
	b.wall = b.finished.Sub(b.submitted)
	b.cancel = nil
	for _, ch := range b.subs {
		close(ch)
	}
	b.subs = nil
	close(b.done)
}

// requestCancel mirrors Job.requestCancel for batches.
func (b *batchJob) requestCancel() bool {
	b.mu.Lock()
	if b.state.terminal() {
		b.mu.Unlock()
		return false
	}
	b.cancelled = true
	if b.cancel != nil {
		b.mu.Unlock()
		b.cancel()
		return true
	}
	b.state = JobCanceled
	b.errText = "canceled before start"
	b.finished = time.Now()
	for _, ch := range b.subs {
		close(ch)
	}
	b.subs = nil
	close(b.done)
	b.mu.Unlock()
	return true
}

// appendRow stamps the batch sequence number onto one completed row,
// records it, and fans it out to live subscribers (slow subscribers
// drop, as with job events — the rows endpoint re-reads the backlog).
// The matrix executor calls OnRow serially, so Seq order is also
// delivery order.
func (b *batchJob) appendRow(row batchRow) {
	b.mu.Lock()
	row.Seq = int64(len(b.rows) + 1)
	b.rows = append(b.rows, row)
	for _, ch := range b.subs {
		select {
		case ch <- row:
		default:
		}
	}
	b.mu.Unlock()
}

// subscribeRows snapshots the backlog and, for a live batch, opens a
// channel carrying every later row (closed at terminal state).
func (b *batchJob) subscribeRows() ([]batchRow, <-chan batchRow) {
	b.mu.Lock()
	defer b.mu.Unlock()
	snapshot := append([]batchRow(nil), b.rows...)
	if b.state.terminal() {
		return snapshot, nil
	}
	ch := make(chan batchRow, 256)
	b.subs = append(b.subs, ch)
	return snapshot, ch
}

// batchStatus is the wire shape of GET /v1/batches/{id}.
type batchStatus struct {
	ID       string              `json:"id"`
	State    JobState            `json:"state"`
	Error    string              `json:"error,omitempty"`
	Specs    []wideleak.RunSpec  `json:"specs"`
	RowsDone int                 `json:"rows_done"`
	Stats    wideleak.BatchStats `json:"stats,omitempty"`
	WallMS   int64               `json:"wall_ms,omitempty"`

	RowsURL   string   `json:"rows_url"`
	TableURLs []string `json:"table_urls,omitempty"`
}

func (b *batchJob) status() batchStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := batchStatus{
		ID:       b.ID,
		State:    b.state,
		Error:    b.errText,
		Specs:    b.specs,
		RowsDone: len(b.rows),
		WallMS:   b.wall.Milliseconds(),
		RowsURL:  "/v1/batches/" + b.ID + "/rows",
	}
	if b.state == JobDone {
		st.Stats = b.stats
		for i := range b.specs {
			st.TableURLs = append(st.TableURLs, fmt.Sprintf("/v1/batches/%s/tables/%d", b.ID, i))
		}
	}
	return st
}

// renderRow flattens one assembled row to the wire shape.
func renderRow(specIdx int, row wideleak.Row) batchRow {
	out := batchRow{Spec: specIdx, App: row.App, Err: row.Err, Probes: row.Probes}
	if row.Failed() {
		return out
	}
	for _, id := range row.Probes {
		if res := row.Result(id); res != nil {
			out.Cells = append(out.Cells, res.Cells()...)
		}
	}
	return out
}

// submitBatchResponse is the wire shape of POST /v1/batches.
type submitBatchResponse struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Specs     int      `json:"specs"`
	StatusURL string   `json:"status_url"`
	RowsURL   string   `json:"rows_url"`
}

func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Specs       []wideleak.RunSpec `json:"specs"`
		Concurrency int                `json:"concurrency,omitempty"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, "batch needs at least one spec")
		return
	}
	specs := make([]wideleak.RunSpec, len(req.Specs))
	for i, spec := range req.Specs {
		c, err := spec.Canonicalize()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("spec %d: %v", i, err))
			return
		}
		specs[i] = c
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.batchSeq++
	batch := newBatchJob(fmt.Sprintf("b%06d", s.batchSeq), specs, req.Concurrency)
	s.batches[batch.ID] = batch
	s.batchIDs = append(s.batchIDs, batch.ID)
	s.wg.Add(1)
	s.mu.Unlock()
	go s.runBatch(batch)

	w.Header().Set("Location", "/v1/batches/"+batch.ID)
	writeJSON(w, http.StatusAccepted, submitBatchResponse{
		ID:        batch.ID,
		State:     batch.State(),
		Specs:     len(specs),
		StatusURL: "/v1/batches/" + batch.ID,
		RowsURL:   "/v1/batches/" + batch.ID + "/rows",
	})
}

// runBatch executes one batch on a bounded batch slot: plan the cell
// matrix, run it through the server's cell cache and warm world tiers,
// stream rows as they complete, then encode every spec's table.
func (s *Server) runBatch(batch *batchJob) {
	defer s.wg.Done()
	s.batchSem <- struct{}{}
	defer func() { <-s.batchSem }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if !batch.start(cancel) {
		return
	}

	var (
		builtMu sync.Mutex
		built   []builtWorld
	)
	res, err := wideleak.ExecuteBatch(ctx, batch.specs, wideleak.BatchOptions{
		Concurrency: batch.concurrency,
		Cache:       s.cells,
		BuildStudy: func(spec wideleak.RunSpec) (*wideleak.Study, error) {
			study, worldHit, err := s.buildStudy(spec)
			if err != nil {
				return nil, err
			}
			study.SetEventSink(func(ev probe.Event) { s.metrics.ObserveEvent(ev) })
			network := study.World.Network
			network.SetRetryObserver(netsim.CombineRetryObservers(network.RetryObserver(), s.metrics.RetryObserver()))
			builtMu.Lock()
			built = append(built, builtWorld{spec: spec, study: study, worldHit: worldHit})
			builtMu.Unlock()
			return study, nil
		},
		OnRow: func(u wideleak.RowUpdate) {
			batch.appendRow(renderRow(u.Spec, u.Row))
			s.metrics.addBatchRow()
		},
	})
	if err != nil {
		state := JobFailed
		if errors.Is(err, context.Canceled) {
			state = JobCanceled
		}
		batch.finish(state, err.Error())
		s.metrics.batchFinished(state)
		return
	}

	tables := make([]map[string][]byte, len(res.Tables))
	for i, table := range res.Tables {
		tables[i] = make(map[string][]byte, len(wideleak.TableFormats()))
		for _, format := range wideleak.TableFormats() {
			out, err := table.Encode(format)
			if err != nil {
				batch.finish(JobFailed, fmt.Sprintf("encode spec %d as %s: %v", i, format, err))
				s.metrics.batchFinished(JobFailed)
				return
			}
			tables[i][format] = out
		}
	}
	batch.mu.Lock()
	batch.tables = tables
	batch.stats = res.Stats
	batch.mu.Unlock()
	s.metrics.addCellStats(res.Stats)
	s.bankWorlds(built)
	batch.finish(JobDone, "")
	s.metrics.batchFinished(JobDone)
}

// batch looks one batch up by ID.
func (s *Server) batch(id string) *batchJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches[id]
}

func (s *Server) handleBatchList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]batchStatus, 0, len(s.batchIDs))
	for i := len(s.batchIDs) - 1; i >= 0; i-- {
		statuses = append(statuses, s.batches[s.batchIDs[i]].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleBatchStatus(w http.ResponseWriter, r *http.Request) {
	batch := s.batch(r.PathValue("id"))
	if batch == nil {
		writeError(w, http.StatusNotFound, "no such batch")
		return
	}
	writeJSON(w, http.StatusOK, batch.status())
}

func (s *Server) handleBatchCancel(w http.ResponseWriter, r *http.Request) {
	batch := s.batch(r.PathValue("id"))
	if batch == nil {
		writeError(w, http.StatusNotFound, "no such batch")
		return
	}
	if !batch.requestCancel() {
		writeError(w, http.StatusConflict, fmt.Sprintf("batch is already %s", batch.State()))
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": batch.ID, "state": batch.State()})
}

func (s *Server) handleBatchTable(w http.ResponseWriter, r *http.Request) {
	batch := s.batch(r.PathValue("id"))
	if batch == nil {
		writeError(w, http.StatusNotFound, "no such batch")
		return
	}
	idx, err := strconv.Atoi(r.PathValue("spec"))
	if err != nil || idx < 0 || idx >= len(batch.specs) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("batch has specs 0..%d", len(batch.specs)-1))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" || format == "text" {
		format = "txt"
	}
	batch.mu.Lock()
	var out []byte
	ok := false
	if batch.state == JobDone && batch.tables != nil {
		out, ok = batch.tables[idx][format]
	}
	state := batch.state
	batch.mu.Unlock()
	if state != JobDone {
		writeError(w, http.StatusConflict, fmt.Sprintf("batch is %s, not done", state))
		return
	}
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (supported: txt, csv, json)", format))
		return
	}
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Write(out)
}

func (s *Server) handleBatchRows(w http.ResponseWriter, r *http.Request) {
	batch := s.batch(r.PathValue("id"))
	if batch == nil {
		writeError(w, http.StatusNotFound, "no such batch")
		return
	}
	if r.URL.Query().Get("stream") != "" {
		s.streamBatchRows(w, r, batch)
		return
	}
	batch.mu.Lock()
	rows := append([]batchRow(nil), batch.rows...)
	batch.mu.Unlock()
	writeJSON(w, http.StatusOK, rows)
}

// streamBatchRows serves completed rows as server-sent events: first
// the backlog, then live rows as cells complete, then a final
// `event: done` carrying the terminal state. Each row is
// `event: row` + its JSON; Seq increases by exactly one per frame.
func (s *Server) streamBatchRows(w http.ResponseWriter, r *http.Request, batch *batchJob) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeRow := func(row batchRow) bool {
		data, err := json.Marshal(row)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: row\ndata: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	backlog, live := batch.subscribeRows()
	for _, row := range backlog {
		if !writeRow(row) {
			return
		}
	}
	if live != nil {
		for {
			select {
			case row, ok := <-live:
				if !ok {
					live = nil
				} else if !writeRow(row) {
					return
				}
			case <-r.Context().Done():
				return
			}
			if live == nil {
				break
			}
		}
	}
	fmt.Fprintf(w, "event: done\ndata: {\"state\":%q}\n\n", batch.State())
	flusher.Flush()
}
