package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/wideleak"
)

// smallSpec is a cheap study (one app, one probe chain) most tests use
// so the suite does not pay for full ten-app runs.
func smallSpec() wideleak.RunSpec {
	return wideleak.RunSpec{Seed: "serve-test", Profiles: []string{"Showtime"}, Probes: []string{"q2"}}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ts
}

// submit POSTs a spec and decodes the response, asserting the status.
func submit(t *testing.T, ts *httptest.Server, spec wideleak.RunSpec, wantStatus int) submitResponse {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var raw bytes.Buffer
		raw.ReadFrom(resp.Body)
		t.Fatalf("submit status = %d, want %d (body: %s)", resp.StatusCode, wantStatus, raw.String())
	}
	var sub submitResponse
	if wantStatus < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
	}
	return sub
}

// getStatus fetches one job's status document.
func getStatus(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/studies/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s = %d", id, resp.StatusCode)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls a job until it leaves the live states.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State.terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobStatus{}
}

// fetchTable downloads one rendering of a finished job's table.
func fetchTable(t *testing.T, ts *httptest.Server, id, format string) []byte {
	t.Helper()
	url := ts.URL + "/v1/studies/" + id + "/table"
	if format != "" {
		url += "?format=" + format
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table %s format=%q = %d (body: %s)", id, format, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

// TestServer_EndToEndGolden is the acceptance path: submit the default
// study, poll to done, and every table rendering is byte-identical to
// the golden files the CLI is pinned to.
func TestServer_EndToEndGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueSize: 4})

	sub := submit(t, ts, wideleak.RunSpec{}, http.StatusAccepted)
	if sub.State != JobQueued || sub.Cached {
		t.Fatalf("fresh submission state = %s cached = %v", sub.State, sub.Cached)
	}

	st := waitTerminal(t, ts, sub.ID)
	if st.State != JobDone {
		t.Fatalf("job state = %s, err = %s", st.State, st.Error)
	}
	if st.Rows != 10 {
		t.Errorf("rows = %d, want 10", st.Rows)
	}
	if st.Observations == 0 || st.Events == 0 {
		t.Errorf("cold run reported observations = %d, events = %d; want both > 0", st.Observations, st.Events)
	}

	for format, golden := range map[string]string{
		"txt":  "tableI_default.txt",
		"csv":  "tableI_default.csv",
		"json": "tableI_default.json",
	} {
		want, err := os.ReadFile(filepath.Join("..", "wideleak", "testdata", golden))
		if err != nil {
			t.Fatal(err)
		}
		got := fetchTable(t, ts, sub.ID, format)
		if !bytes.Equal(got, want) {
			t.Errorf("format %s diverges from %s (got %d bytes, want %d)", format, golden, len(got), len(want))
		}
	}
	// The default format is txt.
	if got := fetchTable(t, ts, sub.ID, ""); !strings.HasPrefix(string(got), "TABLE I:") {
		t.Errorf("default format is not the text table: %.40q", got)
	}

	metrics := metricsText(t, ts)
	for _, want := range []string{
		"wideleakd_jobs_submitted_total 1",
		"wideleakd_cache_misses_total 1",
		"wideleakd_cache_hits_total 0",
		`wideleakd_jobs_total{state="done"} 1`,
		"wideleakd_queue_depth 0",
		"wideleakd_jobs_inflight 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The run produced probe timings.
	if !strings.Contains(metrics, "wideleakd_probe_wall_seconds_count") {
		t.Error("metrics missing probe wall histogram")
	}
}

// TestServer_QueueFullSheds: with one worker held and the queue full,
// the next submission is shed with 429 + Retry-After, and the shed
// counter moves. Draining the gate lets the backlog finish normally.
func TestServer_QueueFullSheds(t *testing.T) {
	gate := make(chan struct{})
	srv := New(Config{Workers: 1, QueueSize: 1})
	srv.testHookJobStart = func(*Job) { <-gate }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	specA := smallSpec()
	specB := smallSpec()
	specB.Seed = "serve-test-b"
	specC := smallSpec()
	specC.Seed = "serve-test-c"

	a := submit(t, ts, specA, http.StatusAccepted) // worker grabs it, parks in the gate
	waitInFlight(t, srv, 1)
	b := submit(t, ts, specB, http.StatusAccepted) // fills the queue
	if a.ID == b.ID {
		t.Fatal("distinct specs coalesced")
	}

	body, _ := json.Marshal(specC)
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	close(gate)
	if st := waitTerminal(t, ts, a.ID); st.State != JobDone {
		t.Errorf("job A state = %s", st.State)
	}
	if st := waitTerminal(t, ts, b.ID); st.State != JobDone {
		t.Errorf("job B state = %s", st.State)
	}
	if metrics := metricsText(t, ts); !strings.Contains(metrics, "wideleakd_jobs_shed_total 1") {
		t.Error("shed counter did not move")
	}
}

// waitInFlight spins until the worker pool holds exactly n jobs.
func waitInFlight(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if int(srv.inFlight.Load()) == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("in-flight never reached %d", n)
}

// TestServer_Coalesce: an identical spec submitted while the first copy
// is still in flight attaches to the live job instead of queuing twice.
func TestServer_Coalesce(t *testing.T) {
	gate := make(chan struct{})
	srv := New(Config{Workers: 1, QueueSize: 2})
	srv.testHookJobStart = func(*Job) { <-gate }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	first := submit(t, ts, smallSpec(), http.StatusAccepted)
	second := submit(t, ts, smallSpec(), http.StatusAccepted)
	if !second.Coalesced || second.ID != first.ID {
		t.Fatalf("identical in-flight spec not coalesced: %+v vs %+v", second, first)
	}
	close(gate)
	if st := waitTerminal(t, ts, first.ID); st.State != JobDone {
		t.Fatalf("job state = %s", st.State)
	}
	if metrics := metricsText(t, ts); !strings.Contains(metrics, "wideleakd_jobs_coalesced_total 1") {
		t.Error("coalesced counter did not move")
	}
}

// TestServer_CancelQueued: a job cancelled before a worker reaches it
// terminalizes in place and the worker later skips it.
func TestServer_CancelQueued(t *testing.T) {
	gate := make(chan struct{})
	srv := New(Config{Workers: 1, QueueSize: 2})
	srv.testHookJobStart = func(*Job) { <-gate }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	blocker := submit(t, ts, smallSpec(), http.StatusAccepted)
	waitInFlight(t, srv, 1)
	queuedSpec := smallSpec()
	queuedSpec.Seed = "serve-test-cancel"
	queued := submit(t, ts, queuedSpec, http.StatusAccepted)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/studies/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	if st := getStatus(t, ts, queued.ID); st.State != JobCanceled {
		t.Fatalf("queued job state after cancel = %s", st.State)
	}

	// Cancelling a terminal job is a conflict.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/studies/"+queued.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("double cancel status = %d, want 409", resp.StatusCode)
	}

	close(gate)
	if st := waitTerminal(t, ts, blocker.ID); st.State != JobDone {
		t.Errorf("blocker state = %s", st.State)
	}
	// The skipped job must not flip back to running or done.
	if st := getStatus(t, ts, queued.ID); st.State != JobCanceled {
		t.Errorf("cancelled job resurrected as %s", st.State)
	}
}

// TestServer_CancelRunning: cancelling an in-flight job aborts the build
// at the next probe boundary and the job lands in canceled.
func TestServer_CancelRunning(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 2})

	// The full default study is long enough to cancel mid-run.
	sub := submit(t, ts, wideleak.RunSpec{Seed: "serve-cancel-running"}, http.StatusAccepted)
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts, sub.ID).State != JobRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/studies/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	st := waitTerminal(t, ts, sub.ID)
	if st.State != JobCanceled {
		t.Fatalf("state after cancel = %s (err %q)", st.State, st.Error)
	}

	// The table is not available for a canceled job.
	resp, err = http.Get(ts.URL + "/v1/studies/" + sub.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("table of canceled job = %d, want 409", resp.StatusCode)
	}
}

// TestServer_ShutdownDrains: Shutdown refuses new work but runs every
// queued job to completion before returning.
func TestServer_ShutdownDrains(t *testing.T) {
	srv := New(Config{Workers: 1, QueueSize: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := submit(t, ts, smallSpec(), http.StatusAccepted)
	queuedSpec := smallSpec()
	queuedSpec.Seed = "serve-test-drain"
	second := submit(t, ts, queuedSpec, http.StatusAccepted)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	for _, id := range []string{first.ID, second.ID} {
		if st := getStatus(t, ts, id); st.State != JobDone {
			t.Errorf("job %s drained to %s, want done", id, st.State)
		}
	}

	// Draining servers refuse new submissions and fail health checks.
	body, _ := json.Marshal(smallSpec())
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain healthz = %d, want 503", resp.StatusCode)
	}
}

// TestServer_BadRequests pins the API's error contract.
func TestServer_BadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 1})

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/studies", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("{not json"); got != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", got)
	}
	if got := post(`{"bogus_field": 1}`); got != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400", got)
	}
	if got := post(`{"probes": ["q9"]}`); got != http.StatusBadRequest {
		t.Errorf("unknown probe = %d, want 400", got)
	}
	if got := post(`{"profiles": ["NoSuchService"]}`); got != http.StatusBadRequest {
		t.Errorf("unknown app = %d, want 400", got)
	}
	if got := post(`{"faults": {"rate": 2}}`); got != http.StatusBadRequest {
		t.Errorf("bad fault rate = %d, want 400", got)
	}

	for _, path := range []string{"/v1/studies/nope", "/v1/studies/nope/table", "/v1/studies/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}

	// Unknown format on a finished job is a 400.
	sub := submit(t, ts, smallSpec(), http.StatusAccepted)
	if st := waitTerminal(t, ts, sub.ID); st.State != JobDone {
		t.Fatalf("job state = %s", st.State)
	}
	resp, err := http.Get(ts.URL + "/v1/studies/" + sub.ID + "/table?format=yaml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format = %d, want 400", resp.StatusCode)
	}
}

// TestServer_Events: the event log of a finished job is a JSON array of
// stamped events, and the SSE stream replays it then reports the
// terminal state.
func TestServer_Events(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 1})

	sub := submit(t, ts, smallSpec(), http.StatusAccepted)
	st := waitTerminal(t, ts, sub.ID)
	if st.State != JobDone {
		t.Fatalf("job state = %s", st.State)
	}

	resp, err := http.Get(ts.URL + "/v1/studies/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("event log is empty")
	}
	if len(events) != st.Events {
		t.Errorf("events endpoint returned %d events, status says %d", len(events), st.Events)
	}
	for i, ev := range events {
		if seq, _ := ev["seq"].(float64); int(seq) != i+1 {
			t.Fatalf("event %d has seq %v", i, ev["seq"])
		}
		if at, _ := ev["at"].(string); at == "" {
			t.Fatalf("event %d missing timestamp", i)
		}
	}

	// SSE replay of a finished job: the backlog then a done marker.
	sresp, err := http.Get(ts.URL + "/v1/studies/" + sub.ID + "/events?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if got := sresp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("stream content type = %q", got)
	}
	var stream bytes.Buffer
	stream.ReadFrom(sresp.Body)
	text := stream.String()
	if got := strings.Count(text, "data: "); got != len(events)+1 {
		t.Errorf("stream carried %d data frames, want %d events + done", got, len(events))
	}
	if !strings.Contains(text, fmt.Sprintf("event: done\ndata: {\"state\":%q}", JobDone)) {
		t.Errorf("stream missing done frame:\n%s", text)
	}
}

// TestServer_List: the index lists jobs newest first.
func TestServer_List(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	a := submit(t, ts, smallSpec(), http.StatusAccepted)
	waitTerminal(t, ts, a.ID)
	otherSpec := smallSpec()
	otherSpec.Seed = "serve-test-list"
	b := submit(t, ts, otherSpec, http.StatusAccepted)
	waitTerminal(t, ts, b.ID)

	resp, err := http.Get(ts.URL + "/v1/studies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != b.ID || list[1].ID != a.ID {
		t.Fatalf("list = %+v, want [%s %s]", list, b.ID, a.ID)
	}
}
