package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/ott"
	"repro/internal/wideleak"
)

// TestServer_DrainUnderLoad pins the drain contract while work is still
// in flight: the moment Shutdown starts, new submissions get 503 and
// /healthz fails — but the running job and the queued backlog run to
// completion, and their status/table endpoints stay readable throughout.
func TestServer_DrainUnderLoad(t *testing.T) {
	srv := New(Config{Workers: 1, QueueSize: 4})
	gate := make(chan struct{})
	srv.testHookJobStart = func(*Job) { <-gate }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	running := submit(t, ts, smallSpec(), http.StatusAccepted)
	waitInFlight(t, srv, 1)
	queuedSpec := smallSpec()
	queuedSpec.Seed = "serve-test-drain-load"
	queued := submit(t, ts, queuedSpec, http.StatusAccepted)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()

	// Drain must become visible while the gate still holds the first job.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never flipped to 503 during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// New work is refused mid-drain...
	body, _ := json.Marshal(smallSpec())
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("mid-drain submit = %d, want 503", resp.StatusCode)
	}
	// ...but accepted jobs are still observable, and still live. (The
	// gate holds the first job before start(), so both read queued.)
	for _, id := range []string{running.ID, queued.ID} {
		if st := getStatus(t, ts, id); st.State.terminal() {
			t.Errorf("mid-drain job %s already %s, want live", id, st.State)
		}
	}
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v with a job still gated", err)
	default:
	}

	close(gate)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		if st := getStatus(t, ts, id); st.State != JobDone {
			t.Errorf("job %s drained to %s, want done", id, st.State)
		}
		if table := fetchTable(t, ts, id, "txt"); len(table) == 0 {
			t.Errorf("job %s: empty table after drain", id)
		}
	}
}

// TestServer_PrewarmConcurrent: racing Prewarm calls for one seed must
// all succeed with the same resident count, leave exactly one banked
// world snapshot, and make the first real request mint zero keys — the
// fleet daemon prewarms every replica at boot, sometimes while traffic
// is already arriving.
func TestServer_PrewarmConcurrent(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	const callers = 4
	var wg sync.WaitGroup
	residents := make([]int, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			residents[i], errs[i] = srv.Prewarm(context.Background(), "prewarm-conc", 3, 2)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("Prewarm[%d]: %v", i, errs[i])
		}
		if residents[i] != 3 {
			t.Errorf("Prewarm[%d] resident = %d, want 3", i, residents[i])
		}
	}
	if got := srv.worlds.len(); got != 1 {
		t.Errorf("world cache holds %d snapshots after concurrent prewarm, want 1", got)
	}

	// The racing warm-ups must have produced ONE coherent pool: a run over
	// the first profile (whose devices are the first stable IDs) finds
	// every key resident and generates nothing.
	first := ott.Profiles()[0].Name
	spec := wideleak.RunSpec{Seed: "prewarm-conc", Profiles: []string{first}, Probes: []string{"q2"}}
	if st := waitTerminal(t, ts, submit(t, ts, spec, http.StatusAccepted).ID); st.State != JobDone {
		t.Fatalf("prewarmed job: %s", st.Error)
	}
	if got := srv.metrics.RSAMinted(); got != 0 {
		t.Errorf("post-prewarm run minted %d keys, want 0", got)
	}
	if got := counterValue(t, metricsText(t, ts), "wideleakd_world_cache_hits_total"); got != "1" {
		t.Errorf("world cache hits = %s, want 1", got)
	}
}
