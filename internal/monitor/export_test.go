package monitor_test

import (
	"bytes"
	"testing"

	"repro/internal/attack"
	"repro/internal/cdm"
	"repro/internal/keybox"
	"repro/internal/license"
	"repro/internal/monitor"
	"repro/internal/oemcrypto"
	"repro/internal/procmem"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

func TestExportImportTrace_RoundTrip(t *testing.T) {
	engine, _ := newEngine(t)
	m := monitor.New()
	m.AttachCDM(engine)
	s, err := engine.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.GenerateDerivedKeys(s, []byte("ctx")); err != nil {
		t.Fatal(err)
	}
	iv := bytes.Repeat([]byte{1}, 16)
	if _, err := engine.GenericEncrypt(s, iv, []byte("payload")); err != nil {
		t.Fatal(err)
	}

	blob, err := m.ExportTrace()
	if err != nil {
		t.Fatal(err)
	}
	events, err := monitor.ImportTrace(blob)
	if err != nil {
		t.Fatal(err)
	}
	orig := m.Events()
	if len(events) != len(orig) {
		t.Fatalf("imported %d events, want %d", len(events), len(orig))
	}
	for i := range orig {
		if events[i].Func != orig[i].Func || events[i].Session != orig[i].Session {
			t.Errorf("event %d header mismatch", i)
		}
		if !bytes.Equal(events[i].In, orig[i].In) || !bytes.Equal(events[i].Out, orig[i].Out) {
			t.Errorf("event %d buffer mismatch", i)
		}
	}
}

func TestImportTrace_Invalid(t *testing.T) {
	if _, err := monitor.ImportTrace([]byte("junk")); err == nil {
		t.Error("junk import succeeded")
	}
	if _, err := monitor.ImportTrace([]byte(`[{"symbol":"_oecc99"}]`)); err == nil {
		t.Error("unknown symbol import succeeded")
	}
	if _, err := monitor.ImportTrace([]byte(`[{"symbol":"_oecc13","keys":[{"kid":"xx"}]}]`)); err == nil {
		t.Error("bad kid import succeeded")
	}
}

// TestOfflineAnalysisWorkflow is the paper's two-phase workflow: capture a
// trace on the "device", serialize it, and run the key-ladder recovery on
// the deserialized copy (as if on a workstation).
func TestOfflineAnalysisWorkflow(t *testing.T) {
	rand := wvcrypto.NewDeterministicReader("offline-analysis")
	kb, err := keybox.New("OFFLINE-ANALYSIS", 4442, rand)
	if err != nil {
		t.Fatal(err)
	}
	store := newMapStore()
	if err := oemcrypto.InstallKeybox(store, kb.Marshal()); err != nil {
		t.Fatal(err)
	}
	space := procmem.NewSpace("mediadrmserver")
	engine, err := oemcrypto.NewSoftEngine("3.1.0", space, store, rand)
	if err != nil {
		t.Fatal(err)
	}
	registry := provision.NewRegistry()
	registry.RegisterDevice(kb.StableIDString(), kb.DeviceKey)
	client := newProvisionedClient(t, engine, registry, rand)

	// Capture phase.
	m := monitor.New()
	m.AttachCDM(engine)
	kid := [16]byte{0xAB}
	contentKey := bytes.Repeat([]byte{0xCD}, 16)
	db := license.NewKeyDB()
	db.Register("m", []license.KeyEntry{{KID: kid, Key: contentKey, Track: license.TrackVideo}})
	licSrv := license.NewServer(db, registry, license.Policy{}, rand)
	s, err := client.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	signed, err := client.CreateLicenseRequest(s, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := licSrv.HandleRequest(signed)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.ProcessLicenseResponse(s, signed, resp); err != nil {
		t.Fatal(err)
	}
	blob, err := m.ExportTrace()
	if err != nil {
		t.Fatal(err)
	}

	// Analysis phase: fresh process, only the blob + recovered material.
	events, err := monitor.ImportTrace(blob)
	if err != nil {
		t.Fatal(err)
	}
	handle, err := monitor.New().AttachProcess(space)
	if err != nil {
		t.Fatal(err)
	}
	recoveredKB, err := attack.RecoverKeybox(handle)
	if err != nil {
		t.Fatal(err)
	}
	rsaKey, err := attack.RecoverDeviceRSAKey(recoveredKB, store)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := attack.RecoverContentKeys(rsaKey, events)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(keys[kid], contentKey) {
		t.Error("offline analysis did not recover the content key")
	}
}

// newProvisionedClient provisions a CDM client against an in-process
// server.
func newProvisionedClient(t *testing.T, engine oemcrypto.Engine, registry *provision.Registry, rand *wvcrypto.DeterministicReader) *cdm.Client {
	t.Helper()
	client := cdm.NewClient(engine, rand)
	srv := provision.NewServer(registry, provision.Policy{}, rand)
	s, err := client.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	req, err := client.CreateProvisioningRequest(s)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Provision(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.ProcessProvisioningResponse(s, resp); err != nil {
		t.Fatal(err)
	}
	if err := client.CloseSession(s); err != nil {
		t.Fatal(err)
	}
	return client
}
