// Package monitor reproduces the paper's instrumentation tooling: a
// Frida-style monitor that (a) hooks the Widevine CDM's _oecc entry points
// inside the DRM server process and records every call with its visible
// buffers, (b) attaches to process memory for scanning — but only processes
// that do not deploy anti-debugging, which in practice means the Widevine
// process and never the OTT apps themselves, and (c) man-in-the-middles app
// network traffic, defeating certificate pinning with an SSL re-pinning
// patch, exactly as the authors did with Frida + Burp.
package monitor

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/netsim"
	"repro/internal/oemcrypto"
	"repro/internal/procmem"
)

// ErrAntiDebug is returned when attaching to a process that resists
// debuggers (the OTT app processes).
var ErrAntiDebug = errors.New("monitor: process blocks attachment (anti-debugging)")

// Monitor is one instrumentation session.
type Monitor struct {
	mu      sync.Mutex
	events  []oemcrypto.CallEvent
	engines []oemcrypto.Engine
}

// New returns an idle monitor.
func New() *Monitor {
	return &Monitor{}
}

// AttachCDM hooks every _oecc entry point of the engine (the Frida script
// of the paper's Github). Multiple engines can be hooked at once.
func (m *Monitor) AttachCDM(engine oemcrypto.Engine) {
	engine.SetTracer(func(ev oemcrypto.CallEvent) {
		m.mu.Lock()
		defer m.mu.Unlock()
		m.events = append(m.events, ev)
	})
	m.mu.Lock()
	defer m.mu.Unlock()
	m.engines = append(m.engines, engine)
}

// Detach removes every installed hook.
func (m *Monitor) Detach() {
	m.mu.Lock()
	engines := m.engines
	m.engines = nil
	m.mu.Unlock()
	for _, e := range engines {
		e.SetTracer(nil)
	}
}

// Reset clears recorded events (hooks stay installed).
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = nil
}

// Events returns a copy of every recorded CDM call.
func (m *Monitor) Events() []oemcrypto.CallEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]oemcrypto.CallEvent, len(m.events))
	copy(out, m.events)
	return out
}

// EventsByFunc filters recorded calls by entry point.
func (m *Monitor) EventsByFunc(f oemcrypto.Func) []oemcrypto.CallEvent {
	var out []oemcrypto.CallEvent
	for _, ev := range m.Events() {
		if ev.Func == f {
			out = append(out, ev)
		}
	}
	return out
}

// UsedLibraries reports which shared objects the recorded control flow
// touched — the paper's L1/L3 discriminator ("the use of L1 is confirmed
// whenever the control flow reaches liboemcrypto.so").
func (m *Monitor) UsedLibraries() map[string]bool {
	out := make(map[string]bool)
	for _, ev := range m.Events() {
		if ev.Library != "" {
			out[ev.Library] = true
		}
	}
	return out
}

// DumpedOutputs returns the output buffers recorded for one entry point —
// e.g. GenericDecrypt outputs, which is how the paper recovered Netflix's
// protected manifest URIs.
func (m *Monitor) DumpedOutputs(f oemcrypto.Func) [][]byte {
	var out [][]byte
	for _, ev := range m.EventsByFunc(f) {
		if ev.Out != nil {
			out = append(out, append([]byte(nil), ev.Out...))
		}
	}
	return out
}

// ProcessHandle is an attached process whose memory the monitor can scan.
type ProcessHandle struct {
	space *procmem.Space
}

// AttachProcess attaches to a process's memory. Anti-debugging processes
// (the OTT apps) refuse; the Widevine DRM server does not.
func (m *Monitor) AttachProcess(space *procmem.Space) (*ProcessHandle, error) {
	if space.Protected() {
		return nil, fmt.Errorf("%w: %s", ErrAntiDebug, space.ProcessName())
	}
	return &ProcessHandle{space: space}, nil
}

// Scan searches the attached process's memory for a byte pattern
// (Frida's Memory.scan).
func (h *ProcessHandle) Scan(pattern []byte) []procmem.Match {
	return h.space.Scan(pattern)
}

// ReadAt reads memory at an absolute address.
func (h *ProcessHandle) ReadAt(addr uint64, buf []byte) (int, error) {
	return h.space.ReadAt(addr, buf)
}

// Regions lists the process's mapped regions.
func (h *ProcessHandle) Regions() []procmem.RegionInfo {
	return h.space.Snapshot()
}

// NetworkTap is an installed MITM on one app's traffic.
type NetworkTap struct {
	interceptor *netsim.Interceptor
}

// InterceptNetwork MITMs an app's network stack: install the proxy, then
// apply the SSL re-pinning patch so pinned connections keep working — the
// bypass the paper reports succeeded against every evaluated app.
func (m *Monitor) InterceptNetwork(client *netsim.Client) *NetworkTap {
	tap := &NetworkTap{interceptor: netsim.NewInterceptor()}
	client.InstallMITM(tap.interceptor)
	client.DisablePinning()
	return tap
}

// Exchanges returns the captured plaintext traffic.
func (t *NetworkTap) Exchanges() []netsim.Exchange {
	return t.interceptor.Captured()
}
