package monitor_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/keybox"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/oemcrypto"
	"repro/internal/procmem"
	"repro/internal/wvcrypto"
)

type mapStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string][]byte)} }

func (s *mapStore) Put(name string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = append([]byte(nil), data...)
}

func (s *mapStore) Get(name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.m[name]
	return d, ok
}

func newEngine(t *testing.T) (*oemcrypto.SoftEngine, *procmem.Space) {
	t.Helper()
	rand := wvcrypto.NewDeterministicReader("monitor-test")
	kb, err := keybox.New("MON-DEV", 1, rand)
	if err != nil {
		t.Fatal(err)
	}
	store := newMapStore()
	if err := oemcrypto.InstallKeybox(store, kb.Marshal()); err != nil {
		t.Fatal(err)
	}
	space := procmem.NewSpace("mediadrmserver")
	engine, err := oemcrypto.NewSoftEngine("15.0", space, store, rand)
	if err != nil {
		t.Fatal(err)
	}
	return engine, space
}

func TestAttachCDM_RecordsAndFilters(t *testing.T) {
	engine, _ := newEngine(t)
	m := monitor.New()
	m.AttachCDM(engine)

	s, err := engine.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.GenerateDerivedKeys(s, []byte("ctx")); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.GenericSign(s, []byte("payload")); err != nil {
		t.Fatal(err)
	}

	events := m.Events()
	if len(events) != 3 {
		t.Fatalf("recorded %d events, want 3", len(events))
	}
	opens := m.EventsByFunc(oemcrypto.FuncOpenSession)
	if len(opens) != 1 || opens[0].Session != s {
		t.Errorf("open events = %+v", opens)
	}
	libs := m.UsedLibraries()
	if !libs[oemcrypto.LibWVDRMEngine] || libs[oemcrypto.LibOEMCrypto] {
		t.Errorf("libraries = %v", libs)
	}

	m.Reset()
	if len(m.Events()) != 0 {
		t.Error("Reset did not clear events")
	}

	m.Detach()
	if _, err := engine.OpenSession(); err != nil {
		t.Fatal(err)
	}
	if len(m.Events()) != 0 {
		t.Error("events recorded after Detach")
	}
}

func TestDumpedOutputs(t *testing.T) {
	engine, _ := newEngine(t)
	m := monitor.New()
	m.AttachCDM(engine)
	s, err := engine.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.GenerateDerivedKeys(s, []byte("channel")); err != nil {
		t.Fatal(err)
	}
	iv := bytes.Repeat([]byte{1}, 16)
	secret := []byte("https://cdn/protected-uri")
	ct, err := engine.GenericEncrypt(s, iv, secret)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.GenericDecrypt(s, iv, ct); err != nil {
		t.Fatal(err)
	}
	dumps := m.DumpedOutputs(oemcrypto.FuncGenericDecrypt)
	if len(dumps) != 1 || !bytes.Equal(dumps[0], secret) {
		t.Errorf("dumps = %q", dumps)
	}
}

func TestAttachProcess_AntiDebug(t *testing.T) {
	m := monitor.New()
	appSpace := procmem.NewSpace("app:netflix")
	appSpace.SetProtected(true)
	if _, err := m.AttachProcess(appSpace); !errors.Is(err, monitor.ErrAntiDebug) {
		t.Errorf("err = %v, want ErrAntiDebug", err)
	}

	drmSpace := procmem.NewSpace("mediadrmserver")
	h, err := m.AttachProcess(drmSpace)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Regions()) != 0 {
		t.Error("fresh space has regions")
	}
}

func TestProcessHandle_ScanAndRead(t *testing.T) {
	_, space := newEngine(t) // engine init places the keybox in memory
	m := monitor.New()
	h, err := m.AttachProcess(space)
	if err != nil {
		t.Fatal(err)
	}
	matches := h.Scan(keybox.Magic[:])
	if len(matches) == 0 {
		t.Fatal("keybox magic not found")
	}
	buf := make([]byte, 4)
	if _, err := h.ReadAt(matches[0].Addr, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, keybox.Magic[:]) {
		t.Errorf("read %x at match", buf)
	}
}

func TestInterceptNetwork(t *testing.T) {
	network := netsim.NewNetwork()
	network.RegisterHost("api.example", func(req netsim.Request) (netsim.Response, error) {
		return netsim.Response{Status: 200, Body: []byte("manifest")}, nil
	})
	client := netsim.NewClient(network)
	client.Pin("api.example")

	m := monitor.New()
	tap := m.InterceptNetwork(client)

	resp, err := client.Do(netsim.Request{Host: "api.example", Path: "/m"})
	if err != nil {
		t.Fatalf("pinned exchange failed after re-pinning: %v", err)
	}
	if string(resp.Body) != "manifest" {
		t.Errorf("resp = %q", resp.Body)
	}
	exchanges := tap.Exchanges()
	if len(exchanges) != 1 || string(exchanges[0].Response.Body) != "manifest" {
		t.Errorf("exchanges = %+v", exchanges)
	}
}

func TestAttachMultipleEngines(t *testing.T) {
	e1, _ := newEngine(t)
	e2, _ := newEngine(t)
	m := monitor.New()
	m.AttachCDM(e1)
	m.AttachCDM(e2)
	if _, err := e1.OpenSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.OpenSession(); err != nil {
		t.Fatal(err)
	}
	if len(m.Events()) != 2 {
		t.Errorf("events = %d, want 2", len(m.Events()))
	}
	m.Detach()
	if _, err := e1.OpenSession(); err != nil {
		t.Fatal(err)
	}
	if len(m.Events()) != 2 {
		t.Error("detach left hooks installed")
	}
}
