package monitor

import (
	"encoding/base64"
	"encoding/json"
	"fmt"

	"repro/internal/oemcrypto"
)

// TraceEventExport is the serialized form of one hooked call, the format
// the wvmonitor tool emits for offline analysis (the paper's workflow:
// capture on device, analyze on a workstation).
type TraceEventExport struct {
	Symbol  string `json:"symbol"` // _oeccXX
	Name    string `json:"name"`
	Session uint32 `json:"session"`
	Library string `json:"library"`
	// In/Out are base64 buffer dumps; omitted when not visible (secure
	// output path).
	In    string `json:"in,omitempty"`
	Out   string `json:"out,omitempty"`
	Error string `json:"error,omitempty"`
	// Keys carries LoadKeys wrapped-key argument dumps.
	Keys []ExportedKey `json:"keys,omitempty"`
}

// ExportedKey is one dumped wrapped key.
type ExportedKey struct {
	KID     string `json:"kid"`
	IV      string `json:"iv"`
	Payload string `json:"payload"`
}

// ExportTrace serializes the recorded events as JSON lines-compatible
// array.
func (m *Monitor) ExportTrace() ([]byte, error) {
	events := m.Events()
	out := make([]TraceEventExport, 0, len(events))
	for _, ev := range events {
		exp := TraceEventExport{
			Symbol:  ev.Func.OECCName(),
			Name:    ev.Func.String(),
			Session: uint32(ev.Session),
			Library: ev.Library,
		}
		if ev.In != nil {
			exp.In = base64.StdEncoding.EncodeToString(ev.In)
		}
		if ev.Out != nil {
			exp.Out = base64.StdEncoding.EncodeToString(ev.Out)
		}
		if ev.Err != nil {
			exp.Error = ev.Err.Error()
		}
		for _, k := range ev.Keys {
			exp.Keys = append(exp.Keys, ExportedKey{
				KID:     base64.StdEncoding.EncodeToString(k.KID[:]),
				IV:      base64.StdEncoding.EncodeToString(k.IV[:]),
				Payload: base64.StdEncoding.EncodeToString(k.Payload),
			})
		}
		out = append(out, exp)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("monitor: export trace: %w", err)
	}
	return b, nil
}

// ImportTrace parses an exported trace back into call events, so analysis
// tooling (internal/attack) can run on captures from another session.
func ImportTrace(data []byte) ([]oemcrypto.CallEvent, error) {
	var exported []TraceEventExport
	if err := json.Unmarshal(data, &exported); err != nil {
		return nil, fmt.Errorf("monitor: import trace: %w", err)
	}
	nameToFunc := map[string]oemcrypto.Func{}
	for f := oemcrypto.Func(1); f <= oemcrypto.FuncKeyboxInfo; f++ {
		nameToFunc[f.OECCName()] = f
	}
	out := make([]oemcrypto.CallEvent, 0, len(exported))
	for i, exp := range exported {
		f, ok := nameToFunc[exp.Symbol]
		if !ok {
			return nil, fmt.Errorf("monitor: import trace: unknown symbol %q at %d", exp.Symbol, i)
		}
		ev := oemcrypto.CallEvent{
			Func:    f,
			Session: oemcrypto.SessionID(exp.Session),
			Library: exp.Library,
		}
		var err error
		if exp.In != "" {
			if ev.In, err = base64.StdEncoding.DecodeString(exp.In); err != nil {
				return nil, fmt.Errorf("monitor: import trace in[%d]: %w", i, err)
			}
		}
		if exp.Out != "" {
			if ev.Out, err = base64.StdEncoding.DecodeString(exp.Out); err != nil {
				return nil, fmt.Errorf("monitor: import trace out[%d]: %w", i, err)
			}
		}
		for _, k := range exp.Keys {
			var ek oemcrypto.EncryptedKey
			kid, err := base64.StdEncoding.DecodeString(k.KID)
			if err != nil || len(kid) != 16 {
				return nil, fmt.Errorf("monitor: import trace kid[%d]", i)
			}
			copy(ek.KID[:], kid)
			iv, err := base64.StdEncoding.DecodeString(k.IV)
			if err != nil || len(iv) != 16 {
				return nil, fmt.Errorf("monitor: import trace iv[%d]", i)
			}
			copy(ek.IV[:], iv)
			if ek.Payload, err = base64.StdEncoding.DecodeString(k.Payload); err != nil {
				return nil, fmt.Errorf("monitor: import trace payload[%d]: %w", i, err)
			}
			ev.Keys = append(ev.Keys, ek)
		}
		out = append(out, ev)
	}
	return out, nil
}
