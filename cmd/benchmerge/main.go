// Command benchmerge maintains the repo's benchmark JSON baselines.
// Three modes:
//
//	benchmerge base.json overlay.json...          merge (later files win)
//	benchmerge -parse bench.txt...                go-bench text → JSON
//	benchmerge -guard [-tolerance 25] base cur    fail on ns/op regression
//
// Merge preserves the first file's key order (new keys appended in their
// own file order) and passes values through verbatim, so flat-number
// entries (the load-harness format) and object entries coexist.
//
// Parse distills `go test -bench -benchmem` output into
// {"name": {"ns_per_op": N, "allocs_per_op": M}}, reading the named
// files (or stdin when none). The GOMAXPROCS "-N" suffix is stripped so
// baselines compare across core counts.
//
// Guard compares every benchmark present in BOTH files and exits 1 when
// any current ns/op exceeds baseline × (1 + tolerance/100). Benchmarks
// missing from either side are skipped (new benchmarks don't fail the
// gate; removed ones don't block). Baselines in the legacy flat form
// ({"name": ns_per_op}) are accepted.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// entry is one benchmark's parsed numbers.
type entry struct {
	NsPerOp     float64
	AllocsPerOp *float64
}

func main() {
	fs := flag.NewFlagSet("benchmerge", flag.ExitOnError)
	parse := fs.Bool("parse", false, "parse go-bench text (files or stdin) into baseline JSON")
	guard := fs.Bool("guard", false, "compare baseline.json current.json and fail on regression")
	tolerance := fs.Float64("tolerance", 25, "allowed ns/op regression percentage for -guard")
	fs.Parse(os.Args[1:])
	args := fs.Args()

	switch {
	case *parse && *guard:
		fmt.Fprintln(os.Stderr, "benchmerge: -parse and -guard are mutually exclusive")
		os.Exit(2)
	case *parse:
		runParse(args)
	case *guard:
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchmerge -guard [-tolerance pct] baseline.json current.json")
			os.Exit(2)
		}
		runGuard(args[0], args[1], *tolerance)
	default:
		if len(args) < 1 {
			fmt.Fprintln(os.Stderr, "usage: benchmerge base.json overlay.json... > merged.json")
			os.Exit(2)
		}
		runMerge(args)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchmerge:", err)
	os.Exit(1)
}

// --- merge -----------------------------------------------------------

func runMerge(paths []string) {
	merged := make(map[string]json.RawMessage)
	var order []string
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		var file map[string]json.RawMessage
		if err := json.Unmarshal(raw, &file); err != nil {
			fatal(fmt.Errorf("%s: %v", path, err))
		}
		for _, key := range keyOrder(raw) {
			if _, seen := merged[key]; !seen {
				order = append(order, key)
			}
			var compact bytes.Buffer
			if err := json.Compact(&compact, file[key]); err != nil {
				fatal(fmt.Errorf("%s: key %q: %v", path, key, err))
			}
			merged[key] = append(json.RawMessage(nil), compact.Bytes()...)
		}
	}
	fmt.Println("{")
	for i, key := range order {
		comma := ","
		if i == len(order)-1 {
			comma = ""
		}
		fmt.Printf("  %q: %s%s\n", key, merged[key], comma)
	}
	fmt.Println("}")
}

// keyOrder streams the top-level object's keys in document order. Only
// depth-1 strings in key position are keys: baseline values are numbers
// or flat objects of numbers, whose own keys sit at depth 2 (and those
// inner keys are skipped by the depth check, never string values).
func keyOrder(raw []byte) []string {
	dec := json.NewDecoder(bytes.NewReader(raw))
	var keys []string
	depth := 0
	expectKey := false
	for {
		tok, err := dec.Token()
		if err != nil {
			return keys
		}
		switch v := tok.(type) {
		case json.Delim:
			if v == '{' || v == '[' {
				depth++
			} else {
				depth--
			}
			expectKey = v == '{'
		case string:
			if depth == 1 && expectKey {
				keys = append(keys, v)
			}
			expectKey = !expectKey
		default:
			expectKey = true
		}
	}
}

// --- parse -----------------------------------------------------------

// gomaxprocsSuffix is the "-N" testing appends to benchmark names when
// GOMAXPROCS != 1.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func runParse(paths []string) {
	var readers []io.Reader
	if len(paths) == 0 {
		readers = append(readers, os.Stdin)
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		readers = append(readers, f)
	}

	entries := make(map[string]entry)
	var order []string
	for _, r := range readers {
		scanner := bufio.NewScanner(r)
		for scanner.Scan() {
			name, e, ok := parseBenchLine(scanner.Text())
			if !ok {
				continue
			}
			if _, seen := entries[name]; !seen {
				order = append(order, name)
			}
			entries[name] = e
		}
		if err := scanner.Err(); err != nil {
			fatal(err)
		}
	}

	fmt.Println("{")
	for i, name := range order {
		e := entries[name]
		comma := ","
		if i == len(order)-1 {
			comma = ""
		}
		if e.AllocsPerOp != nil {
			fmt.Printf("  %q: {\"ns_per_op\": %s, \"allocs_per_op\": %s}%s\n",
				name, formatNum(e.NsPerOp), formatNum(*e.AllocsPerOp), comma)
		} else {
			fmt.Printf("  %q: {\"ns_per_op\": %s}%s\n", name, formatNum(e.NsPerOp), comma)
		}
	}
	fmt.Println("}")
}

// parseBenchLine extracts one benchmark result from a go-bench output
// line: `BenchmarkX[-N] <iters> <ns> ns/op [<B> B/op <allocs> allocs/op]`.
func parseBenchLine(line string) (string, entry, bool) {
	fields := bytes.Fields([]byte(line))
	if len(fields) < 4 || !bytes.HasPrefix(fields[0], []byte("Benchmark")) {
		return "", entry{}, false
	}
	name := gomaxprocsSuffix.ReplaceAllString(string(fields[0]), "")
	var e entry
	found := false
	for i := 2; i < len(fields); i++ {
		v, err := strconv.ParseFloat(string(fields[i-1]), 64)
		if err != nil {
			continue
		}
		switch string(fields[i]) {
		case "ns/op":
			e.NsPerOp = v
			found = true
		case "allocs/op":
			allocs := v
			e.AllocsPerOp = &allocs
		}
	}
	return name, e, found
}

// formatNum renders a benchmark number the shortest way that stays
// integral for integral values (ns/op and allocs/op normally are).
func formatNum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// --- guard -----------------------------------------------------------

// loadNs reads a baseline file into name → ns/op, accepting both the
// object form ({"ns_per_op": ...}) and the legacy flat-number form.
func loadNs(path string) map[string]float64 {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var file map[string]json.RawMessage
	if err := json.Unmarshal(raw, &file); err != nil {
		fatal(fmt.Errorf("%s: %v", path, err))
	}
	out := make(map[string]float64, len(file))
	for name, val := range file {
		var flat float64
		if json.Unmarshal(val, &flat) == nil {
			out[name] = flat
			continue
		}
		var obj struct {
			NsPerOp *float64 `json:"ns_per_op"`
		}
		if json.Unmarshal(val, &obj) == nil && obj.NsPerOp != nil {
			out[name] = *obj.NsPerOp
		}
	}
	return out
}

func runGuard(basePath, curPath string, tolerance float64) {
	base := loadNs(basePath)
	cur := loadNs(curPath)
	limit := 1 + tolerance/100
	compared, regressed, skipped := 0, 0, 0
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		baseNs, ok := base[name]
		if !ok || baseNs <= 0 {
			skipped++
			continue
		}
		compared++
		ratio := cur[name] / baseNs
		if ratio > limit {
			regressed++
			fmt.Fprintf(os.Stderr, "benchmerge: REGRESSION %s: %.0f ns/op vs baseline %.0f (+%.1f%% > %.0f%% tolerance)\n",
				name, cur[name], baseNs, (ratio-1)*100, tolerance)
		}
	}
	fmt.Printf("benchmerge: guard compared %d benchmarks against %s (%d new/unknown skipped): %d regressed\n",
		compared, basePath, skipped, regressed)
	if compared == 0 {
		fatal(fmt.Errorf("guard compared zero benchmarks — name mismatch between %s and %s?", basePath, curPath))
	}
	if regressed > 0 {
		os.Exit(1)
	}
}
