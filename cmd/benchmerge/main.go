// Command benchmerge merges benchmark JSON files ({"name": ns_per_op})
// in argument order — later files win on duplicate keys — and prints the
// result with the first file's key order preserved (new keys appended in
// their own file order). `make bench-cold` uses it to fold the cold-start
// numbers into BENCH_tableI.json without discarding the full-suite
// entries.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchmerge base.json overlay.json... > merged.json")
		os.Exit(2)
	}
	merged := make(map[string]json.Number)
	var order []string
	for _, path := range os.Args[1:] {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchmerge:", err)
			os.Exit(1)
		}
		// Decode twice: once for values, once token-wise for key order.
		var file map[string]json.Number
		if err := json.Unmarshal(raw, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchmerge: %s: %v\n", path, err)
			os.Exit(1)
		}
		for _, key := range keyOrder(raw) {
			if _, seen := merged[key]; !seen {
				order = append(order, key)
			}
			merged[key] = file[key]
		}
	}
	fmt.Println("{")
	for i, key := range order {
		comma := ","
		if i == len(order)-1 {
			comma = ""
		}
		fmt.Printf("  %q: %s%s\n", key, merged[key], comma)
	}
	fmt.Println("}")
}

// keyOrder streams the top-level object's keys in document order.
func keyOrder(raw []byte) []string {
	dec := json.NewDecoder(bytes.NewReader(raw))
	var keys []string
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return keys
		}
		switch v := tok.(type) {
		case json.Delim:
			if v == '{' || v == '[' {
				depth++
			} else {
				depth--
			}
		case string:
			// At depth 1 every string in key position names a metric; values
			// here are numbers, so any depth-1 string IS a key.
			if depth == 1 {
				keys = append(keys, v)
			}
		}
	}
}
