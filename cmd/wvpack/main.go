// Command wvpack packages a synthetic title with CENC under a chosen key
// policy and prints the resulting file layout, key table and manifest —
// the packager half of the DRM pipeline, runnable standalone.
//
// Usage:
//
//	wvpack [-content movie-1] [-audio-enc] [-audio-key] [-scheme cenc|cbcs] [-out dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/cenc"
	"repro/internal/media"
	"repro/internal/wvcrypto"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wvpack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wvpack", flag.ContinueOnError)
	contentID := fs.String("content", "movie-1", "content identifier")
	audioEnc := fs.Bool("audio-enc", true, "encrypt audio tracks")
	audioKey := fs.Bool("audio-key", false, "use a distinct audio key (Widevine recommendation)")
	scheme := fs.String("scheme", "cenc", "protection scheme: cenc (AES-CTR) or cbcs (AES-CBC pattern)")
	seed := fs.String("seed", "default", "key generation seed")
	outDir := fs.String("out", "", "write packaged files to this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	policy := media.KeyPolicy{
		EncryptAudio:     *audioEnc,
		DistinctAudioKey: *audioKey,
		Scheme:           *scheme,
	}
	tracks := media.GenerateTitle(*contentID, media.DefaultGenerateOptions())
	packaged, err := media.Package(*contentID, tracks, policy, wvcrypto.NewDeterministicReader("wvpack-"+*seed))
	if err != nil {
		return err
	}

	fmt.Printf("Packaged %q (%s, audio encrypted=%v, distinct audio key=%v)\n\n",
		*contentID, *scheme, *audioEnc, *audioKey)

	fmt.Println("Content keys:")
	for _, k := range packaged.Keys {
		maxH := "any"
		if k.MaxHeight > 0 {
			maxH = fmt.Sprintf("<=%dp", k.MaxHeight)
		}
		fmt.Printf("  %-6s kid=%s key=%x %s\n", k.Track, cenc.KIDToString(k.KID), k.Key[:4], maxH)
	}

	fmt.Println("\nFiles:")
	paths := make([]string, 0, len(packaged.Files))
	for p := range packaged.Files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	total := 0
	for _, p := range paths {
		fmt.Printf("  %-40s %6d bytes\n", p, len(packaged.Files[p]))
		total += len(packaged.Files[p])
	}
	fmt.Printf("  %d files, %d bytes total\n", len(paths), total)

	mpd, err := packaged.MPD.Marshal()
	if err != nil {
		return err
	}
	fmt.Printf("\nManifest (%d bytes):\n%s\n", len(mpd), mpd)

	if *outDir != "" {
		for _, p := range paths {
			dst := filepath.Join(*outDir, filepath.FromSlash(p))
			if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(dst, packaged.Files[p], 0o644); err != nil {
				return err
			}
		}
		if err := os.WriteFile(filepath.Join(*outDir, *contentID+".mpd"), mpd, 0o644); err != nil {
			return err
		}
		fmt.Printf("Wrote %d files under %s\n", len(paths)+1, *outDir)
	}
	return nil
}
