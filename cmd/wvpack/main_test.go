package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRun_Defaults(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRun_CBCSWithOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-scheme", "cbcs", "-audio-key", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	mpd, err := os.ReadFile(filepath.Join(dir, "movie-1.mpd"))
	if err != nil {
		t.Fatal(err)
	}
	if len(mpd) == 0 {
		t.Error("empty mpd written")
	}
	init, err := os.ReadFile(filepath.Join(dir, "movie-1", "video", "540p", "init.mp4"))
	if err != nil {
		t.Fatal(err)
	}
	if len(init) == 0 {
		t.Error("empty init written")
	}
}

func TestRun_BadScheme(t *testing.T) {
	if err := run([]string{"-scheme", "nope"}); err == nil {
		t.Fatal("bad scheme accepted")
	}
}
