// Command wvmonitor attaches the Frida-style monitor to one app's playback
// and prints the observed message flow: the framework-level steps of the
// paper's Figure 1 interleaved with the hooked _oecc CDM calls, then a
// summary of intercepted network traffic.
//
// Usage:
//
//	wvmonitor [-app Netflix] [-device pixel|l3|nexus5] [-seed s] [-dump]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/android"
	"repro/internal/monitor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wvmonitor:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wvmonitor", flag.ContinueOnError)
	appName := fs.String("app", "Netflix", "OTT app to monitor")
	devKind := fs.String("device", "pixel", "device: pixel (L1), l3, nexus5")
	seed := fs.String("seed", "default", "world seed")
	dump := fs.Bool("dump", false, "hex-dump visible call buffers (truncated)")
	export := fs.String("export", "", "write the full trace as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	world, err := wideleak.NewWorld(*seed, nil)
	if err != nil {
		return err
	}
	fixture, err := world.Fixture(canonicalName(*appName))
	if err != nil {
		return err
	}

	cell := fixture.Cell(*devKind)
	if cell == nil {
		return fmt.Errorf("unknown device %q (fixture has: %s)", *devKind, strings.Join(world.DeviceNames(), ", "))
	}
	app, engine := cell.App, cell.Device.Engine

	mon := monitor.New()
	mon.AttachCDM(engine)
	defer mon.Detach()
	tap := mon.InterceptNetwork(app.NetworkClient())

	report := app.Play(wideleak.ContentID)

	fmt.Printf("== Playback: %s on %s (%s) ==\n", report.App, report.Device, report.Level)
	switch {
	case report.Played():
		fmt.Printf("played %dp, %d frames decoded\n", report.PlayedHeight, report.FramesDecoded)
	case report.ProvisionDenied:
		fmt.Printf("BLOCKED at provisioning: %s\n", report.ProvisionErr)
	case report.LicenseDenied:
		fmt.Printf("BLOCKED at licensing: %s\n", report.LicenseErr)
	default:
		fmt.Printf("failed: %s\n", report.Err)
	}

	fmt.Println("\n== Framework flow (Figure 1 sequence diagram) ==")
	fmt.Print(android.RenderSequenceDiagram(app.FlowLog()))

	fmt.Println("\n== Hooked CDM calls (_oecc trace) ==")
	for _, ev := range mon.Events() {
		status := "ok"
		if ev.Err != nil {
			status = "ERR " + ev.Err.Error()
		}
		fmt.Printf("  %s %-26s session=%d lib=%s in=%dB out=%dB %s\n",
			ev.Func.OECCName(), ev.Func, ev.Session, ev.Library, len(ev.In), len(ev.Out), status)
		if *dump {
			if len(ev.In) > 0 {
				fmt.Printf("      in:  %s\n", hexPreview(ev.In))
			}
			if len(ev.Out) > 0 {
				fmt.Printf("      out: %s\n", hexPreview(ev.Out))
			}
		}
	}

	fmt.Println("\n== Intercepted network traffic (post SSL re-pinning) ==")
	for _, ex := range tap.Exchanges() {
		fmt.Printf("  %s%s  req=%dB resp=%dB status=%d\n",
			ex.Request.Host, ex.Request.Path, len(ex.Request.Body), len(ex.Response.Body), ex.Response.Status)
	}

	if *export != "" {
		blob, err := mon.ExportTrace()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*export, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("\nTrace exported to %s (%d bytes) for offline analysis.\n", *export, len(blob))
	}
	return nil
}

func hexPreview(b []byte) string {
	const max = 32
	if len(b) > max {
		return fmt.Sprintf("%x… (%d bytes)", b[:max], len(b))
	}
	return fmt.Sprintf("%x", b)
}

func canonicalName(name string) string {
	for _, p := range wideleak.Profiles() {
		if strings.EqualFold(p.Name, name) {
			return p.Name
		}
	}
	return name
}
