// Command wideleakd serves the WideLeak study engine over HTTP: a job
// queue and worker pool behind a JSON API, with a content-addressed
// result cache, per-job event logs, Prometheus metrics, load shedding
// and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	wideleakd [-addr host:port] [-workers n] [-queue n] [-cache n]
//	          [-prewarm n] [-prewarm-seed s] [-drain-timeout d]
//	          [-pprof host:port]
//
// See internal/serve for the API surface and README.md for curl
// examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux (side listener only)
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "wideleakd:", err)
		os.Exit(1)
	}
}

// run boots the daemon and blocks until a shutdown signal has been
// handled and every accepted job has drained. ready, when non-nil, is
// called with the bound address once the listener is accepting —
// tests bind :0 and learn the real port through it.
func run(args []string, ready func(addr string)) error {
	fs := flag.NewFlagSet("wideleakd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "study worker pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 16, "job queue capacity (a full queue sheds submissions with 429)")
	cacheSize := fs.Int("cache", 64, "result cache capacity (content-addressed LRU)")
	prewarm := fs.Int("prewarm", 0, "device RSA keys to pre-mint for the default seed at boot (-1 = all; 0 = none)")
	prewarmSeed := fs.String("prewarm-seed", "default", "seed to prewarm (with -prewarm)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to finish accepted jobs on shutdown")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this side address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The profiler gets its own listener so the API mux stays closed: the
	// job surface never exposes /debug/pprof, and the side port can stay
	// firewalled while the API is reachable.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		go http.Serve(pln, nil) // DefaultServeMux carries the pprof handlers
		fmt.Printf("wideleakd: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}

	srv := serve.New(serve.Config{Workers: *workers, QueueSize: *queue, CacheSize: *cacheSize})
	if *prewarm != 0 {
		// Warm in the background so the listener is up immediately; the
		// keypool serves pre-minted keys to any request that races it.
		n := *prewarm
		if n < 0 {
			n = 0 // serve.Prewarm: <= 0 selects the full device set
		}
		go func() {
			start := time.Now()
			resident, err := srv.Prewarm(context.Background(), *prewarmSeed, n, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wideleakd: prewarm seed %q: %v\n", *prewarmSeed, err)
				return
			}
			fmt.Printf("wideleakd: prewarmed %d device keys for seed %q in %s\n",
				resident, *prewarmSeed, time.Since(start).Round(time.Millisecond))
		}()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Printf("wideleakd: listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case err := <-serveErr:
		// The listener died before any signal arrived.
		return err
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way
	fmt.Fprintln(os.Stderr, "wideleakd: signal received, draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then run every accepted job to
	// completion. An expired drain budget cancels the in-flight jobs.
	httpErr := httpSrv.Shutdown(drainCtx)
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	<-serveErr // http.ErrServerClosed once Shutdown has begun
	if httpErr != nil {
		return fmt.Errorf("http shutdown: %w", httpErr)
	}
	fmt.Fprintln(os.Stderr, "wideleakd: drained cleanly")
	return nil
}
