package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// daemon boots the real daemon on a random port and returns its base
// URL plus the channel run's error will land on.
func daemon(t *testing.T, extraArgs ...string) (string, chan error) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "120s"}, extraArgs...)
	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(args, func(addr string) { addrCh <- addr })
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, runErr
	case err := <-runErr:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return "", nil
}

// sigterm delivers SIGTERM to this process — the daemon under test
// catches it via signal.NotifyContext, exactly like a real deploy.
func sigterm(t *testing.T) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
}

func waitExit(t *testing.T, runErr chan error) {
	t.Helper()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(150 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
}

// TestServeSmoke is the `make serve-smoke` contract: boot the daemon,
// submit the default Q1-Q4 study over HTTP, poll it to completion, and
// the text table must be byte-identical to the golden file. Then a
// SIGTERM drains the daemon cleanly.
func TestServeSmoke(t *testing.T) {
	base, runErr := daemon(t)

	resp, err := http.Post(base+"/v1/studies", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit = %d %+v", resp.StatusCode, sub)
	}

	deadline := time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("study never finished")
		}
		resp, err := http.Get(base + "/v1/studies/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("study %s: %s", st.State, st.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err = http.Get(base + "/v1/studies/" + sub.ID + "/table?format=txt")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table fetch = %d", resp.StatusCode)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "internal", "wideleak", "testdata", "tableI_default.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("served table diverges from golden (%d bytes vs %d)", got.Len(), len(want))
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(metrics.String(), `wideleakd_jobs_total{state="done"} 1`) {
		t.Error("metrics do not report the finished job")
	}

	sigterm(t)
	waitExit(t, runErr)
}

// TestSigtermDrainsInFlight: a SIGTERM arriving while a job is still in
// the works drains it — run returns nil only after the queue is empty
// and the workers have wound down.
func TestSigtermDrainsInFlight(t *testing.T) {
	base, runErr := daemon(t, "-workers", "1", "-queue", "4")

	body := `{"seed": "smoke-drain", "profiles": ["Showtime"], "probes": ["q2"]}`
	resp, err := http.Post(base+"/v1/studies", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}

	sigterm(t)
	waitExit(t, runErr)
}

func TestRun_BadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRun_BadAddr(t *testing.T) {
	if err := run([]string{"-addr", "not-an-address"}, nil); err == nil {
		t.Fatal("bad address accepted")
	}
}
