// Command wideleak runs the full study and prints the reproduced Table I,
// optionally followed by the §IV-D practical-impact results and a diff
// against the paper's table.
//
// Usage:
//
//	wideleak [-seed s] [-impact] [-diff] [-app name] [-probes q1,q4] [-list-probes] [-devices pixel,l3] [-list-devices] [-dialect dash|hls|sstr] [-list-dialects] [-format txt|csv|json] [-o file] [-parallel n] [-faults rate] [-fault-seed s]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wideleak:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wideleak", flag.ContinueOnError)
	seed := fs.String("seed", "default", "world seed (reproducible)")
	impact := fs.Bool("impact", false, "also run the §IV-D attack chain per app")
	diff := fs.Bool("diff", true, "compare the reproduced table against the paper's")
	app := fs.String("app", "", "restrict to one app (default: all ten)")
	probes := fs.String("probes", "", "comma-separated probe IDs to run (default: the paper's Q1-Q4; see -list-probes)")
	listProbes := fs.Bool("list-probes", false, "list the registered probes and exit")
	devices := fs.String("devices", "", "comma-separated device profiles for each app's fixture (default: the paper's pixel,l3,nexus5 trio; see -list-devices)")
	listDevices := fs.Bool("list-devices", false, "list the registered device profiles and exit")
	dialect := fs.String("dialect", "", "manifest dialect every app fetches and plays through (default: dash; see -list-dialects)")
	listDialects := fs.Bool("list-dialects", false, "list the registered manifest dialects and exit")
	format := fs.String("format", "txt", "output format: txt (alias text), csv, json")
	outPath := fs.String("o", "", "write the table to this file instead of stdout")
	reportPath := fs.String("report", "", "write a full markdown report (table + impact + forgery) to this file")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "app rows built concurrently (1 = sequential; output is identical at any setting)")
	faults := fs.Float64("faults", 0, "transient fault rate in [0,1) injected per connection attempt (0 = perfect network; retries mask the faults, so output is identical)")
	faultSeed := fs.String("fault-seed", "chaos", "fault schedule seed (same seeds reproduce the same faults)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1, got %d", *parallel)
	}
	if *faults < 0 || *faults >= 1 {
		return fmt.Errorf("-faults must be in [0,1), got %g", *faults)
	}
	switch *format {
	case "txt", "text", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (supported: txt, csv, json)", *format)
	}

	if *listProbes {
		fmt.Println("Registered probes:")
		for _, info := range wideleak.ProbeInfos() {
			tags := ""
			if info.Default {
				tags = " [default]"
			}
			if len(info.Requires) > 0 {
				tags += " (requires " + strings.Join(info.Requires, ", ") + ")"
			}
			fmt.Printf("  %-4s %s%s\n       %s\n", info.ID, info.Title, tags, info.Doc)
		}
		return nil
	}

	if *listDevices {
		defaults := make(map[string]bool)
		for _, name := range wideleak.DefaultDeviceNames() {
			defaults[name] = true
		}
		fmt.Println("Registered device profiles:")
		for _, p := range wideleak.DeviceProfiles() {
			tags := ""
			if defaults[p.Name] {
				tags = " [default]"
			}
			if p.Legacy {
				tags += " (discontinued)"
			}
			fmt.Printf("  %-11s %s%s\n", p.Name, p.Model, tags)
			fmt.Printf("       %s, Android %s (patch %s), CDM %s, keybox %s\n",
				p.Level, p.AndroidVersion, p.PatchLevel, p.CDMVersion, p.Keybox)
		}
		return nil
	}

	if *listDialects {
		fmt.Println("Registered manifest dialects:")
		for _, name := range wideleak.ManifestDialects() {
			tags := ""
			if name == wideleak.DefaultManifestDialect {
				tags = " [default]"
			}
			fmt.Printf("  %s%s\n", name, tags)
		}
		return nil
	}

	canonicalDialect, err := wideleak.ValidateDialect(*dialect)
	if err != nil {
		return err
	}

	var deviceNames []string
	if *devices != "" {
		for _, name := range strings.Split(*devices, ",") {
			if name = strings.TrimSpace(name); name != "" {
				deviceNames = append(deviceNames, name)
			}
		}
		var err error
		if deviceNames, err = wideleak.ValidateDevices(deviceNames); err != nil {
			return err
		}
	}

	var probeIDs []string
	if *probes != "" {
		for _, id := range strings.Split(*probes, ",") {
			if id = strings.TrimSpace(id); id != "" {
				probeIDs = append(probeIDs, id)
			}
		}
		if err := wideleak.ValidateProbes(probeIDs); err != nil {
			return err
		}
	}

	profiles := wideleak.Profiles()
	if *app != "" {
		var selected []wideleak.Profile
		for _, p := range profiles {
			if strings.EqualFold(p.Name, *app) {
				selected = append(selected, p)
			}
		}
		if len(selected) == 0 {
			return fmt.Errorf("unknown app %q", *app)
		}
		profiles = selected
	}
	if canonicalDialect != "" {
		for i := range profiles {
			profiles[i].ManifestDialect = canonicalDialect
		}
	}

	world, err := wideleak.NewWorldDevices(*seed, profiles, deviceNames)
	if err != nil {
		return err
	}
	study := wideleak.NewStudy(world)
	study.Concurrency = *parallel
	study.Probes = probeIDs
	if *faults > 0 {
		world.InstallFaults(wideleak.FaultSpec{
			Seed:    *faultSeed,
			Default: wideleak.TransientFaults(*faults),
		})
	}

	if *reportPath != "" {
		report, err := study.BuildReport()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reportPath, []byte(report.Markdown()), 0o644); err != nil {
			return err
		}
		fmt.Printf("Report written to %s (matches paper: %v)\n", *reportPath, report.MatchesPaper)
		return nil
	}

	table, err := study.BuildTable()
	if err != nil {
		return err
	}
	// One encoder serves both frontends: these are the same bytes the
	// wideleakd table endpoint returns for ?format=.
	out, err := table.Encode(*format)
	if err != nil {
		return err
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("Table written to %s (%d bytes, %s)\n", *outPath, len(out), *format)
	} else {
		fmt.Print(string(out))
	}

	if *diff && *app == "" && *probes == "" && *devices == "" && canonicalDialect == "" {
		diffs := table.Diff(wideleak.PaperTable())
		if len(diffs) == 0 {
			fmt.Println("\nReproduction check: table matches the paper's Table I cell for cell.")
		} else {
			fmt.Println("\nReproduction check: DIFFERENCES from the paper's Table I:")
			for _, d := range diffs {
				fmt.Println("  -", d)
			}
		}
	}

	if *impact {
		fmt.Println("\nPractical impact (§IV-D) on the discontinued Nexus 5:")
		for _, p := range profiles {
			res, err := study.RunPracticalImpact(p.Name)
			if err != nil {
				return err
			}
			status := "DRM-FREE CONTENT RECOVERED"
			if !res.DRMFree {
				status = "attack failed: " + res.FailureReason
			}
			fmt.Printf("  %-20s keybox=%v rsa=%v keys=%d assets=%d max=%dp  %s\n",
				p.Name, res.KeyboxRecovered, res.RSAKeyRecovered,
				res.ContentKeysFound, res.AssetsDecrypted, res.MaxHeight, status)
		}
	}
	return nil
}
