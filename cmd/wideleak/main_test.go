package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRun_SingleAppCSV(t *testing.T) {
	// Exercise the CLI paths that don't need the full ten-app world.
	if err := run([]string{"-app", "Showtime", "-format", "csv", "-diff=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestRun_UnknownApp(t *testing.T) {
	if err := run([]string{"-app", "NoSuchService"}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRun_UnknownFormat(t *testing.T) {
	if err := run([]string{"-app", "Showtime", "-format", "yaml"}); err == nil ||
		!strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("err = %v", err)
	}
}

func TestRun_BadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRun_ParallelFlag(t *testing.T) {
	if err := run([]string{"-app", "Showtime", "-format", "csv", "-diff=false", "-parallel", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-app", "Showtime", "-parallel", "0"}); err == nil ||
		!strings.Contains(err.Error(), "-parallel") {
		t.Fatalf("err = %v", err)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fnErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if fnErr != nil {
		t.Fatal(fnErr)
	}
	return string(out)
}

// TestRun_FormatAliases: "txt" and "text" select the same encoder and
// print identical bytes.
func TestRun_FormatAliases(t *testing.T) {
	args := []string{"-app", "Showtime", "-diff=false"}
	txt := captureStdout(t, func() error { return run(append(args, "-format", "txt")) })
	text := captureStdout(t, func() error { return run(append(args, "-format", "text")) })
	if txt != text {
		t.Errorf("-format txt and text diverged:\n--- txt ---\n%s--- text ---\n%s", txt, text)
	}
	if !strings.Contains(txt, "TABLE I:") || !strings.Contains(txt, "Insights (over") {
		t.Errorf("text output missing table or summary:\n%s", txt)
	}
}

// TestRun_OutputFile: -o writes the encoded table to a file — the same
// bytes stdout would have carried — and prints a note instead.
func TestRun_OutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.csv")
	args := []string{"-app", "Showtime", "-diff=false", "-format", "csv"}
	direct := captureStdout(t, func() error { return run(args) })
	note := captureStdout(t, func() error { return run(append(args, "-o", path)) })
	if !strings.Contains(note, "Table written to "+path) {
		t.Errorf("missing confirmation note:\n%s", note)
	}
	if strings.Contains(note, "Showtime") {
		t.Errorf("-o still printed the table to stdout:\n%s", note)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != direct {
		t.Errorf("-o file differs from stdout bytes:\n--- file ---\n%s--- stdout ---\n%s", data, direct)
	}
}

func TestRun_FaultFlagValidation(t *testing.T) {
	for _, bad := range []string{"-0.1", "1", "1.5"} {
		if err := run([]string{"-app", "Showtime", "-faults", bad}); err == nil ||
			!strings.Contains(err.Error(), "-faults") {
			t.Errorf("-faults %s: err = %v", bad, err)
		}
	}
}

// TestRun_FaultsInvariantOutput is the CLI-level invariance check: the
// same seed with and without transient fault injection prints the exact
// same bytes.
func TestRun_FaultsInvariantOutput(t *testing.T) {
	args := []string{"-app", "Showtime", "-format", "csv", "-diff=false"}
	clean := captureStdout(t, func() error { return run(args) })
	faulty := captureStdout(t, func() error {
		return run(append(args, "-faults", "0.25", "-fault-seed", "cli-chaos"))
	})
	if clean != faulty {
		t.Errorf("output diverged under -faults:\n--- clean ---\n%s--- faulty ---\n%s", clean, faulty)
	}
	if !strings.Contains(clean, "Showtime") {
		t.Errorf("unexpected output:\n%s", clean)
	}
}

func TestRun_ListProbes(t *testing.T) {
	out := captureStdout(t, func() error { return run([]string{"-list-probes"}) })
	if !strings.Contains(out, "Registered probes:") {
		t.Errorf("missing listing header:\n%s", out)
	}
	for _, id := range []string{"q1", "q2", "q3", "q4", "q5"} {
		if !strings.Contains(out, id) {
			t.Errorf("listing missing probe %s:\n%s", id, out)
		}
	}
	if !strings.Contains(out, "[default]") {
		t.Errorf("listing does not mark default probes:\n%s", out)
	}
	if !strings.Contains(out, "requires q2") {
		t.Errorf("listing does not show q3's dependency:\n%s", out)
	}
}

func TestRun_UnknownProbe(t *testing.T) {
	err := run([]string{"-app", "Showtime", "-probes", "q2,q9"})
	if err == nil {
		t.Fatal("unknown probe accepted")
	}
	if !strings.Contains(err.Error(), `"q9"`) || !strings.Contains(err.Error(), "q1, q2, q3, q4, q5") {
		t.Errorf("error does not name the bad ID and list the registry: %v", err)
	}
}

func TestRun_ProbeSubsetOutput(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-app", "Showtime", "-probes", "q2,q3"})
	})
	for _, want := range []string{"Video", "Key Usage", "Showtime"} {
		if !strings.Contains(out, want) {
			t.Errorf("subset output missing %q:\n%s", want, out)
		}
	}
	// The header row must carry only the selected probes' columns (the
	// insights prose below it still mentions Widevine by name).
	lines := strings.Split(out, "\n")
	if len(lines) < 2 {
		t.Fatalf("output too short:\n%s", out)
	}
	header := lines[1]
	for _, forbidden := range []string{"Widevine", "Playback on L3 legacy"} {
		if strings.Contains(header, forbidden) {
			t.Errorf("subset header contains %q: %s", forbidden, header)
		}
	}
	if strings.Contains(out, "Reproduction check") {
		t.Errorf("paper diff ran despite a probe subset:\n%s", out)
	}
}

func TestRun_Report(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is expensive")
	}
	path := filepath.Join(t.TempDir(), "report.md")
	if err := run([]string{"-report", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "matches the paper's Table I") {
		t.Errorf("report does not confirm reproduction:\n%.400s", data)
	}
}

func TestRun_ListDevices(t *testing.T) {
	out := captureStdout(t, func() error { return run([]string{"-list-devices"}) })
	if !strings.Contains(out, "Registered device profiles:") {
		t.Errorf("missing listing header:\n%s", out)
	}
	for _, name := range []string{"pixel", "l3", "nexus5", "galaxy-s7", "l3-revoked"} {
		if !strings.Contains(out, name) {
			t.Errorf("listing missing device profile %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "[default]") {
		t.Errorf("listing does not mark the default trio:\n%s", out)
	}
	if !strings.Contains(out, "(discontinued)") {
		t.Errorf("listing does not mark discontinued handsets:\n%s", out)
	}
	if !strings.Contains(out, "keybox revoked") {
		t.Errorf("listing does not show keybox states:\n%s", out)
	}
}

func TestRun_UnknownDevice(t *testing.T) {
	err := run([]string{"-app", "Showtime", "-devices", "pixel,warpphone"})
	if err == nil {
		t.Fatal("unknown device accepted")
	}
	if !strings.Contains(err.Error(), `"warpphone"`) || !strings.Contains(err.Error(), "pixel") ||
		!strings.Contains(err.Error(), "nexus5") {
		t.Errorf("error does not name the bad profile and list the registry: %v", err)
	}
}

// TestRun_DeviceSubsetOutput: a device set without the discontinued
// phone still renders (Q4 shows the no-legacy marker), and explicit
// selection of the default trio prints the same bytes as no flag.
func TestRun_DeviceSubsetOutput(t *testing.T) {
	args := []string{"-app", "Showtime", "-format", "csv", "-diff=false"}
	plain := captureStdout(t, func() error { return run(args) })
	trio := captureStdout(t, func() error {
		return run(append(args, "-devices", "nexus5, l3 ,pixel")) // scrambled + spaced
	})
	if plain != trio {
		t.Errorf("explicit default trio diverged from default:\n--- default ---\n%s--- trio ---\n%s", plain, trio)
	}
	pair := captureStdout(t, func() error {
		return run(append(args, "-devices", "pixel,l3"))
	})
	if pair == plain {
		t.Error("dropping the discontinued device did not change the table")
	}
	if !strings.Contains(pair, "Showtime") {
		t.Errorf("device-subset output unexpected:\n%s", pair)
	}
}
