package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRun_SingleAppCSV(t *testing.T) {
	// Exercise the CLI paths that don't need the full ten-app world.
	if err := run([]string{"-app", "Showtime", "-format", "csv", "-diff=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestRun_UnknownApp(t *testing.T) {
	if err := run([]string{"-app", "NoSuchService"}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRun_UnknownFormat(t *testing.T) {
	if err := run([]string{"-app", "Showtime", "-format", "yaml"}); err == nil ||
		!strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("err = %v", err)
	}
}

func TestRun_BadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRun_ParallelFlag(t *testing.T) {
	if err := run([]string{"-app", "Showtime", "-format", "csv", "-diff=false", "-parallel", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-app", "Showtime", "-parallel", "0"}); err == nil ||
		!strings.Contains(err.Error(), "-parallel") {
		t.Fatalf("err = %v", err)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fnErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if fnErr != nil {
		t.Fatal(fnErr)
	}
	return string(out)
}

func TestRun_FaultFlagValidation(t *testing.T) {
	for _, bad := range []string{"-0.1", "1", "1.5"} {
		if err := run([]string{"-app", "Showtime", "-faults", bad}); err == nil ||
			!strings.Contains(err.Error(), "-faults") {
			t.Errorf("-faults %s: err = %v", bad, err)
		}
	}
}

// TestRun_FaultsInvariantOutput is the CLI-level invariance check: the
// same seed with and without transient fault injection prints the exact
// same bytes.
func TestRun_FaultsInvariantOutput(t *testing.T) {
	args := []string{"-app", "Showtime", "-format", "csv", "-diff=false"}
	clean := captureStdout(t, func() error { return run(args) })
	faulty := captureStdout(t, func() error {
		return run(append(args, "-faults", "0.25", "-fault-seed", "cli-chaos"))
	})
	if clean != faulty {
		t.Errorf("output diverged under -faults:\n--- clean ---\n%s--- faulty ---\n%s", clean, faulty)
	}
	if !strings.Contains(clean, "Showtime") {
		t.Errorf("unexpected output:\n%s", clean)
	}
}

func TestRun_Report(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is expensive")
	}
	path := filepath.Join(t.TempDir(), "report.md")
	if err := run([]string{"-report", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "matches the paper's Table I") {
		t.Errorf("report does not confirm reproduction:\n%.400s", data)
	}
}
