package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRun_SingleAppCSV(t *testing.T) {
	// Exercise the CLI paths that don't need the full ten-app world.
	if err := run([]string{"-app", "Showtime", "-format", "csv", "-diff=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestRun_UnknownApp(t *testing.T) {
	if err := run([]string{"-app", "NoSuchService"}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRun_UnknownFormat(t *testing.T) {
	if err := run([]string{"-app", "Showtime", "-format", "yaml"}); err == nil ||
		!strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("err = %v", err)
	}
}

func TestRun_BadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRun_ParallelFlag(t *testing.T) {
	if err := run([]string{"-app", "Showtime", "-format", "csv", "-diff=false", "-parallel", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-app", "Showtime", "-parallel", "0"}); err == nil ||
		!strings.Contains(err.Error(), "-parallel") {
		t.Fatalf("err = %v", err)
	}
}

func TestRun_Report(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is expensive")
	}
	path := filepath.Join(t.TempDir(), "report.md")
	if err := run([]string{"-report", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "matches the paper's Table I") {
		t.Errorf("report does not confirm reproduction:\n%.400s", data)
	}
}
