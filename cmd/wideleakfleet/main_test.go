package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// fleetDaemon boots the real fleet daemon (router + spawned replicas)
// on random ports and returns its base URL plus run's error channel.
func fleetDaemon(t *testing.T, extraArgs ...string) (string, chan error) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "120s"}, extraArgs...)
	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(args, func(addr string) { addrCh <- addr })
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, runErr
	case err := <-runErr:
		t.Fatalf("fleet daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("fleet daemon never became ready")
	}
	return "", nil
}

func sigterm(t *testing.T) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
}

func waitExit(t *testing.T, runErr chan error) {
	t.Helper()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("fleet daemon exited with error: %v", err)
		}
	case <-time.After(150 * time.Second):
		t.Fatal("fleet daemon never exited after SIGTERM")
	}
}

// TestFleetGolden is the e2e acceptance path: a router over three
// spawned replicas serves the default study byte-identical to the golden
// files in every format — the fleet must be invisible to correctness.
func TestFleetGolden(t *testing.T) {
	base, runErr := fleetDaemon(t, "-spawn", "3")

	resp, err := http.Post(base+"/v1/studies", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID      string `json:"id"`
		State   string `json:"state"`
		Replica string `json:"replica"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" || sub.Replica == "" {
		t.Fatalf("submit = %d %+v", resp.StatusCode, sub)
	}

	deadline := time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("study never finished")
		}
		resp, err := http.Get(base + "/v1/studies/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("study %s: %s", st.State, st.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}

	for format, golden := range map[string]string{
		"txt":  "tableI_default.txt",
		"csv":  "tableI_default.csv",
		"json": "tableI_default.json",
	} {
		resp, err := http.Get(base + "/v1/studies/" + sub.ID + "/table?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		got.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("table fetch %s = %d", format, resp.StatusCode)
		}
		want, err := os.ReadFile(filepath.Join("..", "..", "internal", "wideleak", "testdata", golden))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("format %s through the fleet diverges from %s (%d bytes vs %d)", format, golden, got.Len(), len(want))
		}
	}

	// Fleet metrics report the routed submission and healthy replicas.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"wideleakfleet_routed_total{replica=",
		"wideleakfleet_replica_healthy{replica=\"r0\"} 1",
		"wideleakfleet_replica_healthy{replica=\"r1\"} 1",
		"wideleakfleet_replica_healthy{replica=\"r2\"} 1",
		"wideleakfleet_ring_share{replica=",
		"wideleakfleet_submit_seconds_count 1",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("fleet metrics missing %q", want)
		}
	}

	sigterm(t)
	waitExit(t, runErr)
}

func TestRun_NeedsFleet(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:0"}, nil); err == nil {
		t.Fatal("run accepted a fleet with no replicas")
	}
}

func TestRun_SpawnAndReplicasExclusive(t *testing.T) {
	err := run([]string{"-spawn", "2", "-replicas", "http://127.0.0.1:1"}, nil)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v, want mutually-exclusive error", err)
	}
}

func TestRun_BadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
}
