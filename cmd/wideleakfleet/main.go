// Command wideleakfleet fronts a fleet of wideleakd replicas with a
// consistent-hash router: every study request is routed by its world
// identity (seed + fault schedule), so each replica accumulates an
// independent warm cache set, 429 sheds and dead replicas spill to the
// ring successor, and a replica lost mid-run is failed over
// transparently (determinism makes the rerun byte-identical).
//
// Usage:
//
//	wideleakfleet [-addr host:port] (-spawn n | -replicas url1,url2,...)
//	              [-replica-workers n] [-replica-queue n] [-replica-cache n]
//	              [-vnodes n] [-load-factor f] [-health-interval d]
//	              [-drain-timeout d] [-pprof host:port]
//
// With -spawn n the daemon boots n in-process wideleakd children on
// random ports — a self-contained fleet in one command. With -replicas
// it fronts externally managed daemons instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux (side listener only)
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "wideleakfleet:", err)
		os.Exit(1)
	}
}

// run boots the fleet and blocks until a shutdown signal has been
// handled. ready, when non-nil, receives the router's bound address —
// tests bind :0 and learn the real port through it.
func run(args []string, ready func(addr string)) error {
	fs := flag.NewFlagSet("wideleakfleet", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8090", "router listen address")
	spawn := fs.Int("spawn", 0, "spawn this many in-process wideleakd replicas on random ports")
	replicaURLs := fs.String("replicas", "", "comma-separated base URLs of externally managed wideleakd replicas")
	replicaWorkers := fs.Int("replica-workers", 0, "worker pool size per spawned replica (0 = GOMAXPROCS)")
	replicaQueue := fs.Int("replica-queue", 16, "job queue capacity per spawned replica")
	replicaCache := fs.Int("replica-cache", 64, "result cache capacity per spawned replica")
	vnodes := fs.Int("vnodes", 128, "virtual nodes per replica on the hash ring")
	loadFactor := fs.Float64("load-factor", 1.25, "bounded-load factor (submissions skip an owner above factor x fleet average)")
	healthInterval := fs.Duration("health-interval", 500*time.Millisecond, "active /healthz probe period")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to drain the router and spawned replicas on shutdown")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this side address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Side listener: the routed API never exposes /debug/pprof.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		go http.Serve(pln, nil) // DefaultServeMux carries the pprof handlers
		fmt.Printf("wideleakfleet: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}
	if *spawn > 0 && *replicaURLs != "" {
		return fmt.Errorf("-spawn and -replicas are mutually exclusive")
	}
	if *spawn <= 0 && *replicaURLs == "" {
		return fmt.Errorf("need a fleet: pass -spawn n or -replicas url1,url2,...")
	}

	var members []fleet.Member
	var spawned []*fleet.LocalReplica
	if *spawn > 0 {
		var err error
		spawned, err = fleet.SpawnLocal(*spawn, serve.Config{
			Workers:   *replicaWorkers,
			QueueSize: *replicaQueue,
			CacheSize: *replicaCache,
		})
		if err != nil {
			return err
		}
		for _, rep := range spawned {
			members = append(members, fleet.Member{ID: rep.ID, URL: rep.URL})
			fmt.Printf("wideleakfleet: replica %s on %s\n", rep.ID, rep.URL)
		}
	} else {
		for i, url := range strings.Split(*replicaURLs, ",") {
			url = strings.TrimSpace(url)
			if url == "" {
				continue
			}
			members = append(members, fleet.Member{ID: fmt.Sprintf("r%d", i), URL: url})
		}
	}

	router, err := fleet.NewRouter(members, fleet.Options{
		VNodes:         *vnodes,
		LoadFactor:     *loadFactor,
		HealthInterval: *healthInterval,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		router.Close()
		return err
	}
	httpSrv := &http.Server{Handler: router.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Printf("wideleakfleet: routing %d replicas on http://%s\n", len(members), ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "wideleakfleet: signal received, draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	httpErr := httpSrv.Shutdown(drainCtx)
	router.Close()
	for _, rep := range spawned {
		if err := rep.Shutdown(drainCtx); err != nil {
			return fmt.Errorf("replica %s drain: %w", rep.ID, err)
		}
	}
	<-serveErr
	if httpErr != nil {
		return fmt.Errorf("http shutdown: %w", httpErr)
	}
	fmt.Fprintln(os.Stderr, "wideleakfleet: drained cleanly")
	return nil
}
