// Command keyladder runs the paper's §IV-D proof of concept step by step
// against one app on the discontinued Nexus 5: monitored playback, keybox
// memory scan (CVE-2021-0639), Device RSA key unwrap, key-ladder replay,
// and DRM-free media reconstruction — narrating each rung.
//
// Usage:
//
//	keyladder [-app Netflix] [-seed s]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/attack"
	"repro/internal/cenc"
	"repro/internal/monitor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "keyladder:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("keyladder", flag.ContinueOnError)
	appName := fs.String("app", "Netflix", "OTT app to attack")
	seed := fs.String("seed", "default", "world seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	world, err := wideleak.NewWorld(*seed, nil)
	if err != nil {
		return err
	}
	name := canonicalName(*appName)
	fixture, err := world.Fixture(name)
	if err != nil {
		return err
	}

	legacy := fixture.Legacy()
	if legacy == nil {
		return fmt.Errorf("world has no discontinued device cell")
	}

	fmt.Printf("Target: %s on %s (Android %s, CDM %s, %s)\n",
		name, legacy.Device.Model, legacy.Device.AndroidVersion,
		legacy.Device.CDMVersion, legacy.Device.Level)

	fmt.Println("\n[1/5] Monitored playback (hooking _oecc, MITM + SSL re-pinning)...")
	mon := monitor.New()
	mon.AttachCDM(legacy.Device.Engine)
	defer mon.Detach()
	_ = mon.InterceptNetwork(legacy.App.NetworkClient())
	report := legacy.App.Play(wideleak.ContentID)
	fmt.Printf("      playback: played=%v embeddedCDM=%v provisionDenied=%v (%d CDM calls traced)\n",
		report.Played(), report.UsedEmbeddedCDM, report.ProvisionDenied, len(mon.Events()))

	fmt.Println("\n[2/5] Scanning mediadrmserver memory for the keybox magic...")
	handle, err := mon.AttachProcess(legacy.Device.DRMProcess)
	if err != nil {
		return err
	}
	kb, err := attack.RecoverKeybox(handle)
	if err != nil {
		return fmt.Errorf("keybox recovery failed: %w", err)
	}
	fmt.Printf("      KEYBOX RECOVERED (CWE-922): stableID=%q systemID=%d deviceKey=%x...\n",
		kb.StableIDString(), kb.SystemID(), kb.DeviceKey[:4])

	fmt.Println("\n[3/5] Unwrapping the provisioned Device RSA key from flash...")
	rsaKey, err := attack.RecoverDeviceRSAKey(kb, legacy.Device.Storage)
	if err != nil {
		return fmt.Errorf("rsa key recovery failed: %w", err)
	}
	fmt.Printf("      DEVICE RSA KEY RECOVERED: %d-bit modulus %x...\n",
		rsaKey.N.BitLen(), rsaKey.N.Bytes()[:4])

	fmt.Println("\n[4/5] Replaying the key ladder over dumped OEMCrypto arguments...")
	keys, err := attack.RecoverContentKeys(rsaKey, mon.Events())
	if err != nil {
		return fmt.Errorf("content key recovery failed: %w", err)
	}
	fmt.Printf("      %d CONTENT KEYS RECOVERED:\n", len(keys))
	for kid, key := range keys {
		fmt.Printf("        kid=%s key=%x...\n", cenc.KIDToString(kid), key[:4])
	}

	fmt.Println("\n[5/5] Downloading assets (no account) and stripping CENC...")
	study := wideleak.NewStudy(world)
	res, err := study.RunPracticalImpact(name)
	if err != nil {
		return err
	}
	if !res.DRMFree {
		return fmt.Errorf("media reconstruction failed: %s", res.FailureReason)
	}
	fmt.Printf("      %d representations decrypted, best quality %dp (qHD cap — L3 never gets HD keys)\n",
		res.AssetsDecrypted, res.MaxHeight)
	fmt.Println("\nResult: DRM-free media recovered and playable off-device.")
	return nil
}

func canonicalName(name string) string {
	for _, p := range wideleak.Profiles() {
		if strings.EqualFold(p.Name, name) {
			return p.Name
		}
	}
	return name
}
