// Command hdforge runs the §V-C future-work experiment (the netflix-1080p
// trick adapted to Android): after the §IV-D recovery on a discontinued L3
// phone, forge a license request claiming L1 to obtain the HD keys the real
// device was never granted.
//
// Usage:
//
//	hdforge [-app Netflix] [-seed s]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hdforge:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hdforge", flag.ContinueOnError)
	appName := fs.String("app", "Netflix", "OTT app to attack")
	seed := fs.String("seed", "default", "world seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	world, err := wideleak.NewWorld(*seed, nil)
	if err != nil {
		return err
	}
	study := wideleak.NewStudy(world)

	name := *appName
	for _, p := range wideleak.Profiles() {
		if strings.EqualFold(p.Name, name) {
			name = p.Name
		}
	}

	fmt.Printf("Honest playback on the L3 device is capped below HD by the license server.\n")
	fmt.Printf("Forging a request claiming L1 with the recovered Device RSA key (%s)...\n\n", name)

	res, err := study.RunHDForgery(name)
	if err != nil {
		return err
	}
	if !res.HDKeysGranted {
		fmt.Printf("Forgery FAILED: %s\n", res.FailureReason)
		return nil
	}
	fmt.Printf("Forgery SUCCEEDED: %d keys granted; %dp representations decrypt.\n", res.Keys, res.MaxHeight)
	fmt.Println("\nRoot cause: the security level in a license request is self-declared —")
	fmt.Println("nothing in the protocol attests it. (Paper §V-C, future work.)")
	return nil
}
