// Command wideleakload drives a wideleak fleet (or a single wideleakd)
// with a synthetic study mix and reports the latency, shed and cache-hit
// profile: Zipf-skewed key popularity over seeds × probe subsets, burst
// arrivals, and mid-flight DELETE cancellations. Results land in a flat
// {"name": number} JSON file that cmd/benchmerge folds into the bench
// baselines.
//
// Usage:
//
//	wideleakload (-fleet url | -spawn n) [-mix smoke|warm|cold|devices|protocols]
//	             [-duration d] [-workers n] [-seeds n] [-subsets n]
//	             [-device-sets n] [-dialects n] [-zipf s] [-burst n] [-cancel-rate f] [-prime]
//	             [-label name] [-out file]
//	             [-replica-workers n] [-replica-queue n] [-replica-cache n]
//
// With -spawn n the harness boots an in-process fleet (n replicas behind
// a router) and drives that; with -fleet it drives an external URL —
// either a wideleakfleet router or a bare wideleakd, the API is the
// same. Explicit flags override the chosen -mix preset.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wideleakload:", err)
		os.Exit(1)
	}
}

// mixConfig is one load shape. The named presets model the fleet's three
// interesting regimes; explicit flags override any field.
type mixConfig struct {
	seeds      int     // distinct world seeds in the key space
	subsets    int     // probe subsets per seed (key space = seeds × subsets × deviceSets)
	deviceSets int     // device-set variants per (seed, subset)
	dialects   int     // manifest-dialect variants per (seed, subset, device set)
	workers    int     // closed-loop client goroutines
	zipf       float64 // Zipf skew s (>1); 0 = uniform key popularity
	burst      int     // submissions issued back-to-back per worker iteration
	cancelRate float64 // fraction of queued submissions canceled mid-flight
	prime      bool    // run every key once before the timed window
}

var mixes = map[string]mixConfig{
	// smoke: tiny warm mix for CI — everything should hit after priming.
	"smoke": {seeds: 2, subsets: 2, deviceSets: 1, workers: 4, zipf: 0, burst: 1, cancelRate: 0.05, prime: true},
	// warm: the sharding payoff regime — a working set that overflows one
	// replica's result cache but fits the fleet's aggregate.
	"warm": {seeds: 12, subsets: 4, deviceSets: 1, workers: 8, zipf: 1.2, burst: 2, cancelRate: 0.02, prime: true},
	// cold: every key computed from scratch; measures raw study throughput
	// and tier-2 reuse across probe subsets of one seed.
	"cold": {seeds: 8, subsets: 4, deviceSets: 1, workers: 6, zipf: 1.1, burst: 1, cancelRate: 0, prime: false},
	// devices: the device axis as a routing dimension — distinct device
	// sets of one seed are distinct worlds (distinct WorldKeys), so the
	// ring spreads them while probe subsets within a set still share.
	"devices": {seeds: 4, subsets: 2, deviceSets: 4, workers: 6, zipf: 1.1, burst: 1, cancelRate: 0, prime: true},
	// protocols: the manifest-dialect axis as a routing dimension — the
	// same seed requested as dash, hls and sstr canonicalizes to three
	// WorldKeys, so the ring spreads the protocol variants while probe
	// subsets within one dialect still share worlds.
	"protocols": {seeds: 3, subsets: 2, deviceSets: 1, dialects: 3, workers: 6, zipf: 1.1, burst: 1, cancelRate: 0, prime: true},
}

// probeSubsets are the per-seed probe-set variants, ordered so subsets=n
// takes a prefix. Distinct subsets of one seed share a WorldKey (and
// therefore a replica and its tier-2 world snapshot) but have distinct
// result-cache keys.
var probeSubsets = [][]string{
	{"q2"},
	{"q3"},
	{"q2", "q3"},
	{"q4"},
}

// deviceSetVariants are the per-key device-set variants, ordered so
// -device-sets n takes a prefix. nil is the default trio (the field is
// omitted from the body); each non-nil set canonicalizes to a distinct
// WorldKey, giving the router a second sharding dimension.
var deviceSetVariants = [][]string{
	nil,
	{"pixel", "l3"},
	{"pixel", "l3", "nexus5", "galaxy-s7", "moto-g5"},
	{"pixel", "l3-revoked", "oneplus-5", "shield-tv"},
}

// dialectVariants are the per-key manifest-dialect variants, ordered so
// -dialects n takes a prefix. "" is the default canonical DASH (the field
// is omitted from the body); each non-default dialect canonicalizes to a
// distinct WorldKey.
var dialectVariants = []string{"", "hls", "sstr"}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wideleakload", flag.ContinueOnError)
	fleetURL := fs.String("fleet", "", "base URL of a running fleet router or wideleakd")
	spawn := fs.Int("spawn", 0, "boot an in-process fleet with this many replicas and drive it")
	mix := fs.String("mix", "smoke", "load shape preset: smoke, warm, cold, devices or protocols")
	duration := fs.Duration("duration", 10*time.Second, "timed measurement window")
	workers := fs.Int("workers", 0, "closed-loop client goroutines (overrides mix)")
	seeds := fs.Int("seeds", 0, "distinct world seeds (overrides mix)")
	subsets := fs.Int("subsets", 0, "probe subsets per seed, max 4 (overrides mix)")
	devSets := fs.Int("device-sets", 0, "device-set variants per (seed, subset), max 4 (overrides mix)")
	dialects := fs.Int("dialects", 0, "manifest-dialect variants per key, max 3 (overrides mix)")
	zipf := fs.Float64("zipf", -1, "Zipf skew s, >1, or 0 for uniform (overrides mix)")
	burst := fs.Int("burst", 0, "submissions per worker iteration (overrides mix)")
	cancelRate := fs.Float64("cancel-rate", -1, "fraction of queued jobs canceled mid-flight (overrides mix)")
	prime := fs.Bool("prime", false, "run every key once before measuring (overrides mix)")
	label := fs.String("label", "Load", "metric name prefix in the output JSON")
	out := fs.String("out", "", "write flat benchmark JSON here (benchmerge input)")
	replicaWorkers := fs.Int("replica-workers", 1, "worker pool size per spawned replica")
	replicaQueue := fs.Int("replica-queue", 16, "job queue capacity per spawned replica")
	replicaCache := fs.Int("replica-cache", 32, "result cache capacity per spawned replica")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, ok := mixes[*mix]
	if !ok {
		return fmt.Errorf("unknown -mix %q (want smoke, warm, cold, devices or protocols)", *mix)
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["workers"] {
		cfg.workers = *workers
	}
	if set["seeds"] {
		cfg.seeds = *seeds
	}
	if set["subsets"] {
		cfg.subsets = *subsets
	}
	if set["device-sets"] {
		cfg.deviceSets = *devSets
	}
	if set["dialects"] {
		cfg.dialects = *dialects
	}
	if set["zipf"] {
		cfg.zipf = *zipf
	}
	if set["burst"] {
		cfg.burst = *burst
	}
	if set["cancel-rate"] {
		cfg.cancelRate = *cancelRate
	}
	if set["prime"] {
		cfg.prime = *prime
	}
	if cfg.subsets < 1 || cfg.subsets > len(probeSubsets) {
		return fmt.Errorf("-subsets must be 1..%d, got %d", len(probeSubsets), cfg.subsets)
	}
	if cfg.deviceSets < 1 || cfg.deviceSets > len(deviceSetVariants) {
		return fmt.Errorf("-device-sets must be 1..%d, got %d", len(deviceSetVariants), cfg.deviceSets)
	}
	if cfg.dialects == 0 {
		cfg.dialects = 1 // pre-dialect presets and zero-value configs mean "dash only"
	}
	if cfg.dialects < 1 || cfg.dialects > len(dialectVariants) {
		return fmt.Errorf("-dialects must be 1..%d, got %d", len(dialectVariants), cfg.dialects)
	}
	if cfg.seeds < 1 || cfg.workers < 1 || cfg.burst < 1 {
		return fmt.Errorf("seeds, workers and burst must be positive")
	}

	if (*fleetURL == "") == (*spawn == 0) {
		return fmt.Errorf("need a target: exactly one of -fleet or -spawn")
	}
	target := strings.TrimRight(*fleetURL, "/")
	if *spawn > 0 {
		local, err := fleet.StartLocal(*spawn, serve.Config{
			Workers:   *replicaWorkers,
			QueueSize: *replicaQueue,
			CacheSize: *replicaCache,
		}, fleet.Options{})
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			local.Shutdown(ctx)
		}()
		target = local.URL
	}

	h := newHarness(target, cfg)
	if cfg.prime {
		primeStart := time.Now()
		if err := h.prime(); err != nil {
			return fmt.Errorf("prime: %w", err)
		}
		fmt.Fprintf(stdout, "%s: primed %d keys in %.1fs\n", *label, len(h.keys), time.Since(primeStart).Seconds())
	}

	stats := h.drive(*duration)
	report(stdout, *label, *duration, cfg, stats)
	if *out != "" {
		blob, err := json.MarshalIndent(stats.flat(*label, *duration), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// loadKey is one point in the request key space: a seed plus a probe
// subset. The spec body is precomputed once.
type loadKey struct {
	body string
}

// harness drives one target URL with one mix.
type harness struct {
	target string
	cfg    mixConfig
	keys   []loadKey
	client *http.Client

	mu   sync.Mutex
	recs []reqResult
}

type reqResult struct {
	latencyMs float64
	tier1     bool // submit answered from the result cache
	tier2     bool // computed, but from a cached world snapshot
	shed      bool // 429
	canceled  bool // we canceled it on purpose
	err       bool
}

func newHarness(target string, cfg mixConfig) *harness {
	h := &harness{
		target: target,
		cfg:    cfg,
		client: &http.Client{Timeout: 5 * time.Minute},
	}
	for s := 0; s < cfg.seeds; s++ {
		for v := 0; v < cfg.subsets; v++ {
			probes, _ := json.Marshal(probeSubsets[v])
			for d := 0; d < cfg.deviceSets; d++ {
				for x := 0; x < cfg.dialects; x++ {
					body := fmt.Sprintf(`{"seed":"load-%02d","profiles":["Showtime"],"probes":%s`, s, probes)
					if deviceSetVariants[d] != nil {
						devices, _ := json.Marshal(deviceSetVariants[d])
						body += fmt.Sprintf(`,"devices":%s`, devices)
					}
					if dialectVariants[x] != "" {
						body += fmt.Sprintf(`,"dialect":%q`, dialectVariants[x])
					}
					h.keys = append(h.keys, loadKey{body: body + "}"})
				}
			}
		}
	}
	return h
}

// prime runs every key once to completion so the timed window measures
// steady-state cache behavior.
func (h *harness) prime() error {
	for _, k := range h.keys {
		rec := h.request(k, false)
		if rec.err {
			return fmt.Errorf("prime request failed for %s", k.body)
		}
	}
	return nil
}

// drive runs the closed-loop worker pool for the measurement window.
func (h *harness) drive(window time.Duration) *loadStats {
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for w := 0; w < h.cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Deterministic per-worker source: reruns see the same key
			// popularity and cancellation pattern.
			rng := rand.New(rand.NewSource(int64(w)*7919 + 12345))
			var zipfGen *rand.Zipf
			if h.cfg.zipf > 1 && len(h.keys) > 1 {
				zipfGen = rand.NewZipf(rng, h.cfg.zipf, 1, uint64(len(h.keys)-1))
			}
			for time.Now().Before(deadline) {
				for b := 0; b < h.cfg.burst; b++ {
					var idx int
					if zipfGen != nil {
						idx = int(zipfGen.Uint64())
					} else {
						idx = rng.Intn(len(h.keys))
					}
					cancel := h.cfg.cancelRate > 0 && rng.Float64() < h.cfg.cancelRate
					rec := h.request(h.keys[idx], cancel)
					h.mu.Lock()
					h.recs = append(h.recs, rec)
					h.mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	stats := &loadStats{}
	for _, rec := range h.recs {
		stats.add(rec)
	}
	return stats
}

// request submits one key and follows it to a terminal state. cancel
// asks for a mid-flight DELETE once the job is queued.
func (h *harness) request(k loadKey, cancel bool) reqResult {
	start := time.Now()
	resp, err := h.client.Post(h.target+"/v1/studies", "application/json", strings.NewReader(k.body))
	if err != nil {
		return reqResult{err: true}
	}
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	decodeErr := json.NewDecoder(resp.Body).Decode(&sub)
	tier1 := resp.Header.Get(serve.HeaderCacheTier) == "hit"
	tier2 := resp.Header.Get(serve.HeaderWorldCache) == "hit"
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return reqResult{shed: true}
	case resp.StatusCode == http.StatusOK:
		// Result-cache hit: the submit roundtrip is the whole latency.
		return reqResult{latencyMs: msSince(start), tier1: tier1, tier2: tier2}
	case resp.StatusCode != http.StatusAccepted || decodeErr != nil || sub.ID == "":
		return reqResult{err: true}
	}

	if cancel {
		req, _ := http.NewRequest(http.MethodDelete, h.target+"/v1/studies/"+sub.ID, nil)
		resp, err := h.client.Do(req)
		if err != nil {
			return reqResult{err: true}
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// 409 means the job finished (or was coalesced onto a run someone
		// else still needs) before the cancel landed — count it as done.
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
			return reqResult{canceled: true}
		}
		if resp.StatusCode != http.StatusConflict {
			return reqResult{err: true}
		}
	}

	for {
		resp, err := h.client.Get(h.target + "/v1/studies/" + sub.ID)
		if err != nil {
			return reqResult{err: true}
		}
		var st struct {
			State      string `json:"state"`
			WorldCache string `json:"world_cache"`
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&st)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decodeErr != nil {
			return reqResult{err: true}
		}
		switch st.State {
		case "done":
			return reqResult{latencyMs: msSince(start), tier2: st.WorldCache == "hit"}
		case "canceled":
			// Either our own cancel raced ahead or a sibling canceled the
			// coalesced run; not a target failure.
			return reqResult{canceled: true}
		case "failed":
			return reqResult{err: true}
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }

// loadStats aggregates one run.
type loadStats struct {
	attempts  int
	done      int
	tier1     int
	tier2     int
	sheds     int
	canceled  int
	errors    int
	latencies []float64 // ms, completed requests only
}

func (s *loadStats) add(r reqResult) {
	s.attempts++
	switch {
	case r.err:
		s.errors++
	case r.shed:
		s.sheds++
	case r.canceled:
		s.canceled++
	default:
		s.done++
		s.latencies = append(s.latencies, r.latencyMs)
		if r.tier1 {
			s.tier1++
		}
		if r.tier2 {
			s.tier2++
		}
	}
}

// percentile returns the p-th percentile of the completed latencies.
func (s *loadStats) percentile(p float64) float64 {
	if len(s.latencies) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.latencies...)
	sort.Float64s(sorted)
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

func ratio(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// flat renders the run as benchmerge's flat {"name": number} shape.
func (s *loadStats) flat(label string, window time.Duration) map[string]float64 {
	return map[string]float64{
		label + "_throughput_rps":  round3(float64(s.done) / window.Seconds()),
		label + "_p50_ms":          round3(s.percentile(50)),
		label + "_p99_ms":          round3(s.percentile(99)),
		label + "_shed_rate":       round3(ratio(s.sheds, s.attempts)),
		label + "_tier1_hit_ratio": round3(ratio(s.tier1, s.done)),
		label + "_tier2_hit_ratio": round3(ratio(s.tier2, s.done)),
		label + "_done":            float64(s.done),
		label + "_canceled":        float64(s.canceled),
		label + "_errors":          float64(s.errors),
	}
}

func round3(f float64) float64 { return float64(int64(f*1000+0.5)) / 1000 }

func report(w io.Writer, label string, window time.Duration, cfg mixConfig, s *loadStats) {
	fmt.Fprintf(w, "%s: %d done / %d attempts in %s (%.1f rps), %d shed, %d canceled, %d errors\n",
		label, s.done, s.attempts, window, float64(s.done)/window.Seconds(), s.sheds, s.canceled, s.errors)
	fmt.Fprintf(w, "%s: latency p50 %.1fms p99 %.1fms; tier-1 hit %.0f%%, tier-2 hit %.0f%% (keys=%d workers=%d zipf=%.1f burst=%d)\n",
		label, s.percentile(50), s.percentile(99),
		100*ratio(s.tier1, s.done), 100*ratio(s.tier2, s.done),
		cfg.seeds*cfg.subsets*cfg.deviceSets, cfg.workers, cfg.zipf, cfg.burst)
}
