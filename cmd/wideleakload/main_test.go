package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFleetSmoke is the `make fleet-smoke` target: boot a 3-replica
// in-process fleet, drive the smoke mix through the router for 2s, and
// require nonzero completed throughput with zero non-shed errors.
func TestFleetSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "smoke.json")
	var buf bytes.Buffer
	err := run([]string{
		"-spawn", "3", "-mix", "smoke", "-duration", "2s",
		"-label", "Smoke", "-out", out,
	}, &buf)
	if err != nil {
		t.Fatalf("wideleakload: %v\noutput:\n%s", err, buf.String())
	}
	t.Logf("harness output:\n%s", buf.String())

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]float64
	if err := json.Unmarshal(blob, &stats); err != nil {
		t.Fatalf("output is not flat benchmark JSON: %v\n%s", err, blob)
	}
	for _, key := range []string{
		"Smoke_throughput_rps", "Smoke_p50_ms", "Smoke_p99_ms",
		"Smoke_shed_rate", "Smoke_tier1_hit_ratio", "Smoke_tier2_hit_ratio",
		"Smoke_done", "Smoke_errors",
	} {
		if _, ok := stats[key]; !ok {
			t.Errorf("output missing %s: %v", key, stats)
		}
	}
	if stats["Smoke_done"] <= 0 {
		t.Errorf("smoke mix completed no requests: %v", stats)
	}
	if stats["Smoke_errors"] != 0 {
		t.Errorf("smoke mix saw %v errors, want 0: %v", stats["Smoke_errors"], stats)
	}
	// The smoke mix primes its 4 keys first, so the timed window should be
	// overwhelmingly cache hits.
	if stats["Smoke_tier1_hit_ratio"] < 0.5 {
		t.Errorf("primed smoke mix tier-1 hit ratio %v, want >= 0.5", stats["Smoke_tier1_hit_ratio"])
	}
}

func TestRun_TargetRequired(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mix", "smoke"}, &buf); err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Fatalf("err = %v, want target-required error", err)
	}
	if err := run([]string{"-spawn", "2", "-fleet", "http://x"}, &buf); err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Fatalf("err = %v, want mutually-exclusive error", err)
	}
}

func TestRun_UnknownMix(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-spawn", "1", "-mix", "hurricane"}, &buf); err == nil || !strings.Contains(err.Error(), "unknown -mix") {
		t.Fatalf("err = %v, want unknown-mix error", err)
	}
}
