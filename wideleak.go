// Package wideleak reproduces "WideLeak: How Over-the-Top Platforms Fail
// in Android" (Patat, Sabt, Fouque — DSN 2022) as a self-contained Go
// library: a simulated Android Widevine ecosystem (OEMCrypto engines at L1
// and L3, TEE, the Android DRM framework, provisioning and license
// servers, DASH/CENC packaging and CDNs, ten OTT app models) plus the
// paper's contribution — an automated, observation-only study engine that
// regenerates Table I and the §IV-D keybox-recovery attack chain.
//
// Quick start:
//
//	world, err := wideleak.NewWorld("seed", nil)
//	if err != nil { ... }
//	study := wideleak.NewStudy(world)
//	table, err := study.BuildTable()
//	fmt.Print(table.Render())
//
// BuildTable fans app rows out over Study.Concurrency workers (default
// runtime.GOMAXPROCS(0)); set Concurrency to 1 for a strictly sequential
// pass or call study.BuildTableParallel(n) for an explicit worker count.
// Every app draws from its own deterministic rand stream forked from the
// world seed, so the rendered table is byte-identical at every
// parallelism level. World.WarmFixtures pre-builds all device fixtures on
// a bounded pool when the minting cost should be paid up front.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package wideleak

import (
	"context"

	"repro/internal/device"
	"repro/internal/manifest"
	"repro/internal/netsim"
	"repro/internal/ott"
	"repro/internal/provision"
	"repro/internal/wideleak"
	"repro/internal/wideleak/probe"
)

// Core study types, re-exported from the internal engine.
type (
	// World is the full experimental setup: ten OTT deployments on a
	// shared simulated network plus per-app device fixtures.
	World = wideleak.World
	// Study runs the paper's four research questions over a World.
	Study = wideleak.Study
	// Table is the reproduced Table I.
	Table = wideleak.Table
	// Row is one app's line of Table I.
	Row = wideleak.Row
	// AppFixture is one app's device matrix: one cell per device profile
	// in the world's device set (the default is the paper's trio — L1
	// Pixel, modern L3 phone, discontinued Nexus 5).
	AppFixture = wideleak.AppFixture
	// DeviceCell is one (device, installed app) unit of an AppFixture.
	DeviceCell = wideleak.DeviceCell
	// DeviceProfile declares one handset model of the device axis.
	DeviceProfile = device.Profile
	// KeyboxState is a device profile's factory keybox trust state.
	KeyboxState = device.KeyboxState

	// Q1Result through Q5Result answer the research questions.
	Q1Result = wideleak.Q1Result
	Q2Result = wideleak.Q2Result
	Q3Result = wideleak.Q3Result
	Q4Result = wideleak.Q4Result
	// Q4DeviceOutcome is one cell of Q4's revocation matrix.
	Q4DeviceOutcome = wideleak.Q4DeviceOutcome
	Q5Result        = wideleak.Q5Result
	// ImpactResult reports one app's §IV-D attack-chain outcome.
	ImpactResult = wideleak.ImpactResult

	// ProbeInfo describes one registered probe (for listings).
	ProbeInfo = probe.Info
	// ProbeEvent is one structured pipeline event (probe started/
	// finished/degraded, masked transport retry).
	ProbeEvent = probe.Event
	// ProbeEventKind classifies a ProbeEvent.
	ProbeEventKind = probe.EventKind
	// ProbeSink receives pipeline events (install via Study.SetEventSink).
	ProbeSink = probe.Sink
	// ProbeLog is a concurrency-safe event collector usable as a sink.
	ProbeLog = probe.Log

	// Protection classifies asset protection (Encrypted/Clear/Unknown).
	Protection = wideleak.Protection
	// KeyUsage classifies key assignment (Minimum/Recommended/Unknown).
	KeyUsage = wideleak.KeyUsage
	// LegacyOutcome classifies discontinued-device playback.
	LegacyOutcome = wideleak.LegacyOutcome
	// LicensePolicy classifies licensing across playbacks (Q5).
	LicensePolicy = wideleak.LicensePolicy

	// Profile describes one OTT app's implementation choices.
	Profile = ott.Profile

	// FaultSpec configures deterministic fault injection for a world.
	FaultSpec = wideleak.FaultSpec
	// FaultProfile is one host's (or the default) fault mix.
	FaultProfile = netsim.FaultProfile

	// KeyPool pre-mints deterministic Device RSA keys off the hot path;
	// see NewKeyPool and World.AttachKeyPool.
	KeyPool = provision.KeyPool

	// RunSpec is the canonical description of one study run — the unit
	// the wideleakd service queues, content-addresses and caches.
	RunSpec = wideleak.RunSpec
	// RunFaults is a RunSpec's optional fault-injection layer.
	RunFaults = wideleak.RunFaults

	// CellOutcome is one memoized probe-cell result — the unit the
	// batch scheduler dedups, caches and reassembles tables from.
	CellOutcome = wideleak.CellOutcome
	// CellCache is the LRU memo of completed probe cells.
	CellCache = wideleak.CellCache
	// BatchOptions configures ExecuteBatch.
	BatchOptions = wideleak.BatchOptions
	// BatchStats reports a batch's planning and execution counters.
	BatchStats = wideleak.BatchStats
	// BatchResult carries a batch's per-spec tables and stats.
	BatchResult = wideleak.BatchResult
	// RowUpdate is one completed (spec, app) row streamed by a batch.
	RowUpdate = wideleak.RowUpdate
)

// Classification values.
const (
	ProtectionUnknown   = wideleak.ProtectionUnknown
	ProtectionEncrypted = wideleak.ProtectionEncrypted
	ProtectionClear     = wideleak.ProtectionClear

	KeyUsageUnknown     = wideleak.KeyUsageUnknown
	KeyUsageMinimum     = wideleak.KeyUsageMinimum
	KeyUsageRecommended = wideleak.KeyUsageRecommended

	LegacyPlays             = wideleak.LegacyPlays
	LegacyProvisioningFails = wideleak.LegacyProvisioningFails
	LegacyPlaysCustomDRM    = wideleak.LegacyPlaysCustomDRM
	LegacyOtherFailure      = wideleak.LegacyOtherFailure

	LicenseUnknown     = wideleak.LicenseUnknown
	LicensePerPlayback = wideleak.LicensePerPlayback
	LicenseCached      = wideleak.LicenseCached
)

// Keybox trust states of the device axis.
const (
	KeyboxValid     = device.KeyboxValid
	KeyboxRevoked   = device.KeyboxRevoked
	KeyboxAbsentTEE = device.KeyboxAbsentTEE
)

// Pipeline event kinds.
const (
	EventProbeStarted  = probe.EventProbeStarted
	EventProbeFinished = probe.EventProbeFinished
	EventProbeDegraded = probe.EventProbeDegraded
	EventRetry         = probe.EventRetry
)

// ContentID is the catalog title every deployment serves.
const ContentID = wideleak.ContentID

// NewWorld builds a reproducible experimental world for the given profiles
// (nil selects the paper's ten apps) over the default device trio.
func NewWorld(seed string, profiles []Profile) (*World, error) {
	return wideleak.NewWorld(seed, profiles)
}

// NewWorldDevices is NewWorld with an explicit device set: each app's
// fixture manufactures one cell per named device profile (nil = the
// default pixel,l3,nexus5 trio). The set is canonicalized — order-
// insensitive, validated against the device registry — before building.
func NewWorldDevices(seed string, profiles []Profile, devices []string) (*World, error) {
	return wideleak.NewWorldDevices(seed, profiles, devices)
}

// DeviceProfiles returns every registered device profile in canonical
// (registration) order — the full device axis.
func DeviceProfiles() []DeviceProfile { return device.Profiles() }

// DeviceProfileNames returns the registered device profile names in
// canonical order.
func DeviceProfileNames() []string { return device.ProfileNames() }

// DefaultDeviceNames returns the default device set (the paper's
// pixel/l3/nexus5 trio), in canonical order.
func DefaultDeviceNames() []string { return device.DefaultProfileNames() }

// ValidateDevices checks a device selection without building anything;
// the error for an unknown name lists the registered profiles, and the
// canonical (deduplicated, registry-ordered) form is returned.
func ValidateDevices(names []string) ([]string, error) {
	return wideleak.CanonicalDeviceNames(names)
}

// ManifestDialects returns the registered manifest dialect names in
// canonical (registration) order — the protocol axis.
func ManifestDialects() []string { return manifest.Names() }

// DefaultManifestDialect is the registered name of the default manifest
// dialect (canonically spelled "" in specs and cache keys).
const DefaultManifestDialect = manifest.DefaultName

// ValidateDialect checks a manifest dialect name without building
// anything; the error for an unknown name lists the registered dialects,
// and the canonical form ("" for the default, the lowercase registered
// name otherwise) is returned.
func ValidateDialect(name string) (string, error) {
	return manifest.CanonicalName(name)
}

// NewStudy wraps a world in a study runner.
func NewStudy(w *World) *Study { return wideleak.NewStudy(w) }

// PaperTable returns the paper's Table I verbatim — the expected result the
// reproduction is compared against.
func PaperTable() *Table { return wideleak.PaperTable() }

// Profiles returns the ten evaluated apps with their observed behaviours.
func Profiles() []Profile { return ott.Profiles() }

// ProbeIDs returns every registered probe ID in registration order.
func ProbeIDs() []string { return wideleak.ProbeIDs() }

// DefaultProbeIDs returns the default probe selection (the paper's
// Q1–Q4), in registration order.
func DefaultProbeIDs() []string { return wideleak.DefaultProbeIDs() }

// ProbeInfos describes every registered probe.
func ProbeInfos() []ProbeInfo { return wideleak.ProbeInfos() }

// ValidateProbes checks a probe selection without running anything; the
// error for an unknown ID lists the registered probes.
func ValidateProbes(ids []string) error { return wideleak.ValidateProbes(ids) }

// TransientFaults builds a transient-only fault profile failing roughly
// rate of connection attempts; the stock retry policies mask it, so the
// study's results are unchanged — only the virtual timeline stretches.
func TransientFaults(rate float64) FaultProfile { return wideleak.TransientFaults(rate) }

// RestoreWorld rebuilds a world from World.Snapshot output in
// milliseconds: cheap state is re-derived from the seed and the expensive
// Device RSA identities are installed from the snapshot, so the restored
// world renders Table I byte-identical to a fresh build with zero key
// generation.
func RestoreWorld(data []byte) (*World, error) { return wideleak.RestoreWorld(data) }

// RestoreWorldProfiles is RestoreWorld with a profile override (nil = the
// snapshot's own profile list).
func RestoreWorldProfiles(data []byte, profiles []Profile) (*World, error) {
	return wideleak.RestoreWorldProfiles(data, profiles)
}

// NewKeyPool builds the deterministic Device RSA key pool for a world
// seed ("" = "default"): keys pre-minted here are byte-identical to the
// ones the seed's worlds would mint on demand.
func NewKeyPool(seed string) *KeyPool { return wideleak.NewKeyPool(seed) }

// DeviceStableIDs lists the stable device IDs the given profiles'
// worlds provision over the default device trio (nil = the paper's ten
// apps) — the ID set to feed KeyPool.Prewarm.
func DeviceStableIDs(profiles []Profile) []string { return wideleak.DeviceStableIDs(profiles) }

// DeviceStableIDsFor is DeviceStableIDs over an explicit device set
// (nil = the default trio): the prewarm ID list for worlds built with
// NewWorldDevices or a RunSpec carrying Devices.
func DeviceStableIDsFor(profiles []Profile, devices []string) ([]string, error) {
	return wideleak.DeviceStableIDsFor(profiles, devices)
}

// CellKey is the content address of one probe cell: seed + canonical
// fault schedule + canonical device set + canonical manifest dialect +
// profile + probe. Everything that can change a cell's outcome is in the
// key; scheduling details (Concurrency, request ordering) deliberately
// are not — see DESIGN.md §cell addressing. devices must be canonical
// (ValidateDevices); nil selects the default trio. dialect must be
// canonical (ValidateDialect); "" is the default DASH form and leaves
// pre-dialect addresses untouched.
func CellKey(seed string, faults *RunFaults, devices []string, dialect, profile, probeID string) string {
	return wideleak.CellKey(seed, faults, devices, dialect, profile, probeID)
}

// NewCellCache builds an LRU memo for capacity completed probe cells
// (<= 0 disables storing, so lookups always miss).
func NewCellCache(capacity int) *CellCache { return wideleak.NewCellCache(capacity) }

// ExecuteBatch plans a slice of RunSpecs as a dedup'd DAG of probe
// cells over shared worlds, executes the distinct cells on a bounded
// pool, and reassembles each spec's Table byte-identical to a fresh
// per-spec run.
func ExecuteBatch(ctx context.Context, specs []RunSpec, opts BatchOptions) (*BatchResult, error) {
	return wideleak.ExecuteBatch(ctx, specs, opts)
}
