package wideleak

// Service-layer benchmarks: the wideleakd job pipeline measured through
// its real HTTP surface (submit → poll → fetch). Cold runs pay for the
// full study; Warm runs hit the content-addressed result cache, so the
// Cold/Warm ratio is the cache's measured speedup (recorded in
// EXPERIMENTS.md §serve).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// benchServeRoundTrip submits one spec and drives it to completion, fetching the
// text table at the end — a full client round trip.
func benchServeRoundTrip(b *testing.B, ts *httptest.Server, spec RunSpec) {
	b.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		b.Fatalf("submit = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(120 * time.Second)
	for sub.State != "done" {
		if time.Now().After(deadline) {
			b.Fatalf("study %s never finished", sub.ID)
		}
		if sub.State == "failed" || sub.State == "canceled" {
			b.Fatalf("study %s reached %s", sub.ID, sub.State)
		}
		time.Sleep(2 * time.Millisecond)
		resp, err := http.Get(ts.URL + "/v1/studies/" + sub.ID)
		if err != nil {
			b.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		sub.State = st.State
	}

	resp, err = http.Get(ts.URL + "/v1/studies/" + sub.ID + "/table?format=txt")
	if err != nil {
		b.Fatal(err)
	}
	var table bytes.Buffer
	table.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || table.Len() == 0 {
		b.Fatalf("table fetch = %d (%d bytes)", resp.StatusCode, table.Len())
	}
}

// BenchmarkServer_Throughput measures the daemon's submit→poll→fetch
// round trip for a one-app study. Cold gives every iteration a fresh
// seed (full device work each time); Warm submits the same canonical
// request concurrently, so all but the first are cache hits.
func BenchmarkServer_Throughput(b *testing.B) {
	newServer := func(b *testing.B) *httptest.Server {
		srv := serve.New(serve.Config{Workers: 4, QueueSize: 64, CacheSize: 128})
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		return ts
	}
	spec := func(seed string) RunSpec {
		return RunSpec{Seed: seed, Profiles: []string{"Showtime"}, Probes: []string{"q2"}}
	}

	b.Run("Cold", func(b *testing.B) {
		ts := newServer(b)
		var n atomic.Int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchServeRoundTrip(b, ts, spec(fmt.Sprintf("bench-cold-%d", n.Add(1))))
		}
	})

	b.Run("Warm", func(b *testing.B) {
		ts := newServer(b)
		benchServeRoundTrip(b, ts, spec("bench-warm")) // populate the cache
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				benchServeRoundTrip(b, ts, spec("bench-warm"))
			}
		})
	})
}
