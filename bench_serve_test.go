package wideleak

// Service-layer benchmarks: the wideleakd job pipeline measured through
// its real HTTP surface (submit → poll → fetch). Cold runs pay for the
// full study; Warm runs hit the content-addressed result cache, so the
// Cold/Warm ratio is the cache's measured speedup (recorded in
// EXPERIMENTS.md §serve).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// benchServeRoundTrip submits one spec and drives it to completion, fetching the
// text table at the end — a full client round trip.
func benchServeRoundTrip(b *testing.B, ts *httptest.Server, spec RunSpec) {
	b.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		b.Fatalf("submit = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(120 * time.Second)
	for sub.State != "done" {
		if time.Now().After(deadline) {
			b.Fatalf("study %s never finished", sub.ID)
		}
		if sub.State == "failed" || sub.State == "canceled" {
			b.Fatalf("study %s reached %s", sub.ID, sub.State)
		}
		time.Sleep(2 * time.Millisecond)
		resp, err := http.Get(ts.URL + "/v1/studies/" + sub.ID)
		if err != nil {
			b.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		sub.State = st.State
	}

	resp, err = http.Get(ts.URL + "/v1/studies/" + sub.ID + "/table?format=txt")
	if err != nil {
		b.Fatal(err)
	}
	var table bytes.Buffer
	table.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || table.Len() == 0 {
		b.Fatalf("table fetch = %d (%d bytes)", resp.StatusCode, table.Len())
	}
}

// BenchmarkServer_Throughput measures the daemon's submit→poll→fetch
// round trip for a one-app study. Cold gives every iteration a fresh
// seed (full device work each time); Warm submits the same canonical
// request concurrently, so all but the first are cache hits.
func BenchmarkServer_Throughput(b *testing.B) {
	newServer := func(b *testing.B) *httptest.Server {
		srv := serve.New(serve.Config{Workers: 4, QueueSize: 64, CacheSize: 128})
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		return ts
	}
	spec := func(seed string) RunSpec {
		return RunSpec{Seed: seed, Profiles: []string{"Showtime"}, Probes: []string{"q2"}}
	}

	b.Run("Cold", func(b *testing.B) {
		ts := newServer(b)
		var n atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchServeRoundTrip(b, ts, spec(fmt.Sprintf("bench-cold-%d", n.Add(1))))
		}
	})

	b.Run("Warm", func(b *testing.B) {
		ts := newServer(b)
		benchServeRoundTrip(b, ts, spec("bench-warm")) // populate the cache
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				benchServeRoundTrip(b, ts, spec("bench-warm"))
			}
		})
	})
}

// BenchmarkServer_ColdWithWorldCache measures the tier-2 path the
// cold-start work attacks: every iteration is a tier-1 MISS (a request
// shape the daemon has never served — the probe subset and profile vary
// per iteration) over a prewarmed seed, so the study runs for real but
// its world restores from the banked snapshot and its keys come from the
// boot-warmed pool. Compare against Throughput/Cold — same full
// submit→run→fetch round trip, minus world build and RSA minting.
func BenchmarkServer_ColdWithWorldCache(b *testing.B) {
	srv := serve.New(serve.Config{Workers: 4, QueueSize: 64, CacheSize: 1024})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	// Boot-time warm-up, outside timing: every device key for the seed,
	// plus the banked world snapshot.
	if _, err := srv.Prewarm(context.Background(), "bench-worldcache", 0, 4); err != nil {
		b.Fatal(err)
	}

	apps := Profiles()
	probes := [][]string{{"q1"}, {"q2"}, {"q3"}, {"q4"}, {"q1", "q2"}, {"q2", "q3"}, {"q3", "q4"}, {"q1", "q4"}, {"q1", "q2", "q3"}, {"q2", "q3", "q4"}}
	var n atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A request shape never seen before: misses the result cache,
		// hits the world cache.
		k := n.Add(1) - 1
		spec := RunSpec{
			Seed:     "bench-worldcache",
			Profiles: []string{apps[k%int64(len(apps))].Name},
			Probes:   probes[(k/int64(len(apps)))%int64(len(probes))],
		}
		benchServeRoundTrip(b, ts, spec)
	}
	if minted := srv.Metrics().RSAMinted(); minted != 0 {
		b.Fatalf("world-cache path minted %d keys, want 0", minted)
	}
}
